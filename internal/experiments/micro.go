package experiments

import (
	"fmt"
	"time"

	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/epc"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sdn"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/telemetry"
	"acacia/internal/trace"
)

func init() {
	registerSolo("6", "LTE-direct walking trace: SNR vs rxPower (Fig. 6)", fig6)
	register(fig8())
	register(fig9())
	register(fig10a())
	register(fig10b())
}

func geoPoint(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }

func fig6(opts Options, seed uint64) *Result {
	floor := geo.ThreeLandmarkFloor()
	samples := trace.Walk(floor, trace.WalkConfig{
		Path:   geo.Fig6WalkPath(),
		Speed:  0.1, // 50 m in 500 s, the paper's time axis
		Period: 5 * time.Second,
		Seed:   seed,
	})
	// Bucket the walk into 25 s windows and report each landmark's mean
	// rxPower and SNR per window — the Fig. 6(b)/(c) series.
	const bucket = 25.0
	type cell struct {
		rx, snr float64
		n       int
	}
	buckets := map[int]map[string]*cell{}
	maxB := 0
	for _, s := range samples {
		bi := int(s.At.Seconds() / bucket)
		if bi > maxB {
			maxB = bi
		}
		if buckets[bi] == nil {
			buckets[bi] = map[string]*cell{}
		}
		c := buckets[bi][s.Landmark]
		if c == nil {
			c = &cell{}
			buckets[bi][s.Landmark] = c
		}
		c.rx += s.RxPower
		c.snr += s.SNR
		c.n++
	}
	rxTbl := stats.NewTable("Received power (dBm) along the walk", "time (s)", "Landmark1", "Landmark2", "Landmark3")
	snrTbl := stats.NewTable("SNR (dB) along the walk", "time (s)", "Landmark1", "Landmark2", "Landmark3")
	for bi := 0; bi <= maxB; bi++ {
		rxRow := []any{bi * 25}
		snrRow := []any{bi * 25}
		for _, lm := range floor.Landmarks {
			if c := buckets[bi][lm.Name]; c != nil && c.n > 0 {
				rxRow = append(rxRow, c.rx/float64(c.n))
				snrRow = append(snrRow, c.snr/float64(c.n))
			} else {
				rxRow = append(rxRow, "-")
				snrRow = append(snrRow, "-")
			}
		}
		rxTbl.AddRow(rxRow...)
		snrTbl.AddRow(snrRow...)
	}
	return &Result{ID: "6", Title: Title("6"), Tables: []*stats.Table{snrTbl, rxTbl},
		Notes: []string{
			"rxPower peaks as the walker passes each landmark (50 dB dynamic range)",
			"SNR saturates at the 25 dB decode span near landmarks — the paper's reason to localize on rxPower",
		}}
}

// fig8 declares one trial per data-plane variant; each measures goodput
// through its own GW-U chain.
func fig8() Experiment {
	variants := []struct {
		name  string
		costs sdn.PathCosts
	}{
		{"OpenEPC", sdn.OpenEPCGWCosts},
		{"ACACIA", sdn.ACACIAGWCosts},
		{"IDEAL", sdn.IdealGWCosts},
	}
	return Experiment{
		ID:    "8",
		Title: "GW-U data plane throughput (Fig. 8)",
		Trials: func(opts Options) []Trial {
			dur := 5 * time.Second
			if opts.Full {
				dur = 20 * time.Second
			}
			trials := make([]Trial, 0, len(variants))
			for _, v := range variants {
				v := v
				trials = append(trials, Trial{
					Key: "variant=" + v.name,
					Run: func(seed uint64) any {
						series, snap := measureGWThroughput(seed, v.costs, dur)
						return Metered{Part: series, Snap: snap}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			series := make([][]float64, len(parts))
			for i, p := range parts {
				series[i] = p.([]float64)
			}
			tbl := stats.NewTable("Data plane goodput (Mbps) over time", "time (s)", "OpenEPC", "ACACIA", "IDEAL")
			for i := range series[0] {
				tbl.AddRow(i+1, series[0][i], series[1][i], series[2][i])
			}
			avg := stats.NewTable("Average goodput (Mbps)", "variant", "Mbps")
			for vi, v := range variants {
				var sum float64
				for _, x := range series[vi] {
					sum += x
				}
				avg.AddRow(v.name, sum/float64(len(series[vi])))
			}
			return &Result{ID: "8", Title: Title("8"), Tables: []*stats.Table{tbl, avg},
				Notes: []string{"paper: the user-space OpenEPC GW caps well below the split ACACIA GW-U, which tracks the ideal line"}}
		},
	}
}

// measureGWThroughput saturates a 1 Gbps GTP chain and returns per-second
// goodput plus a final snapshot of the chain's telemetry registry (link and
// switch counters for the whole run).
func measureGWThroughput(seed uint64, costs sdn.PathCosts, dur time.Duration) ([]float64, *telemetry.Snapshot) {
	eng := sim.NewEngine(seed)
	nw := netsim.New(eng)
	srcN := nw.AddNode("src", pkt.AddrFrom(10, 0, 0, 1))
	sgwN := nw.AddNode("sgw-u", pkt.AddrFrom(10, 0, 0, 2))
	pgwN := nw.AddNode("pgw-u", pkt.AddrFrom(10, 0, 0, 3))
	dstN := nw.AddNode("dst", pkt.AddrFrom(10, 0, 0, 4))
	cfg := netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: 100 * time.Microsecond, QueueBytes: 512 << 10}
	nw.ConnectSymmetric(srcN, sgwN, cfg)
	nw.ConnectSymmetric(sgwN, pgwN, cfg)
	nw.ConnectSymmetric(pgwN, dstN, cfg)

	sgw := sdn.NewSwitch(1, sgwN, costs)
	pgw := sdn.NewSwitch(2, pgwN, costs)
	sgw.MarkGTPPort(0)
	sgw.MarkGTPPort(1)
	pgw.MarkGTPPort(0)
	ctl := sdn.NewController(eng)
	ctl.AddSwitch(sgw)
	ctl.AddSwitch(pgw)
	ctl.InstallFlow(sgw, sdn.FlowEntry{
		Priority: 100, Cookie: 1,
		Match: pkt.Match{TunnelID: pkt.U64(101)},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: 201, TunnelDst: pgwN.Addr()},
			{Type: pkt.ActionOutput, Port: 1},
		},
	})
	ctl.InstallFlow(pgw, sdn.FlowEntry{
		Priority: 100, Cookie: 1,
		Match:   pkt.Match{TunnelID: pkt.U64(201)},
		Actions: []pkt.Action{{Type: pkt.ActionOutput, Port: 1}},
	})
	eng.RunFor(time.Millisecond)

	dst := netsim.NewHost(dstN)
	netsim.NewHost(srcN)
	var bucketBytes uint64
	dst.Listen(5000, netsim.AppFunc(func(_ *netsim.Host, p *netsim.Packet) {
		bucketBytes += uint64(p.Size)
	}))

	const segment = 1400
	interval := time.Duration(float64(segment*8) / 1e9 * float64(time.Second))
	tick := sim.NewTicker(eng, interval, func() {
		p := &netsim.Packet{
			Flow: pkt.FiveTuple{Src: srcN.Addr(), Dst: dstN.Addr(), SrcPort: 1, DstPort: 5000, Proto: pkt.ProtoTCP},
			Size: segment,
		}
		p.Encapsulate(srcN.Addr(), sgwN.Addr(), 101)
		srcN.Inject(p)
	})

	seconds := int(dur / time.Second)
	out := make([]float64, 0, seconds)
	for s := 0; s < seconds; s++ {
		bucketBytes = 0
		eng.RunFor(time.Second)
		out = append(out, float64(bucketBytes*8)/1e6)
	}
	tick.Stop()
	return out, eng.Metrics().Snapshot()
}

// fig9 evaluates localization error across landmark-subset sizes. It
// declares one trial per (landmark count, combination batch): every trial
// rebuilds the same measurement campaign from a shared sub-seed (so all
// subsets are scored on identical readings, as in the paper), scores its
// batch of landmark combinations, and returns a partial stats.Sample that
// Assemble merges per landmark count.
func fig9() Experiment {
	const (
		id        = "9"
		batchSize = 12 // combinations per trial: C(7,3)=35 → 3 batches
		minK      = 3
	)
	return Experiment{
		ID:    id,
		Title: "LTE-direct localization accuracy vs landmark count (Fig. 9)",
		Trials: func(opts Options) []Trial {
			campaignSeed := subSeed(opts.BaseSeed(), id, "campaign")
			floor := geo.RetailFloor()
			var trials []Trial
			for k := minK; k <= len(floor.Landmarks); k++ {
				combos := localization.Combinations(len(floor.Landmarks), k)
				for lo := 0; lo < len(combos); lo += batchSize {
					hi := lo + batchSize
					if hi > len(combos) {
						hi = len(combos)
					}
					k, lo, hi := k, lo, hi
					trials = append(trials, Trial{
						Key: fmt.Sprintf("k=%d/combos=%d-%d", k, lo, hi-1),
						Run: func(uint64) any {
							return fig9Batch(campaignSeed, k, lo, hi)
						},
					})
				}
			}
			return trials
		},
		Assemble: func(opts Options, parts []any) *Result {
			floor := geo.RetailFloor()
			// Re-derive the (k, batch) layout and merge each k's partials.
			perK := map[int]*stats.Sample{}
			i := 0
			for k := minK; k <= len(floor.Landmarks); k++ {
				combos := localization.Combinations(len(floor.Landmarks), k)
				merged := &stats.Sample{}
				for lo := 0; lo < len(combos); lo += batchSize {
					merged.Merge(parts[i].(*stats.Sample))
					i++
				}
				perK[k] = merged
			}
			tbl := stats.NewTable("Localization error (m) vs number of landmarks",
				"landmarks", "best", "mean", "worst")
			for k := minK; k <= len(floor.Landmarks); k++ {
				s := perK[k]
				tbl.AddRow(k, s.Min(), s.Mean(), s.Max())
			}
			return &Result{ID: id, Title: Title(id), Tables: []*stats.Table{tbl},
				Notes: []string{
					"paper: accuracy improves with landmark count; best/worst gap shrinks as placement matters less",
					"with all 7 landmarks the mean error is ≈3 m — sufficient for subsection-level pruning",
				}}
		},
	}
}

// fig9Batch scores landmark combinations [lo, hi) of size k against the
// shared campaign and returns one mean-error observation per combination.
func fig9Batch(campaignSeed uint64, k, lo, hi int) *stats.Sample {
	floor := geo.RetailFloor()
	// Single rxPower samples per (checkpoint, landmark): the shadowed
	// channel's full error reaches the solver, as in the paper's traces.
	readings := trace.Campaign(floor, campaignSeed, 1)
	grouped := trace.ByCheckpoint(readings)
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)
	combos := localization.Combinations(len(floor.Landmarks), k)

	comboErr := &stats.Sample{}
	for _, combo := range combos[lo:hi] {
		want := map[string]bool{}
		for _, idx := range combo {
			want[floor.Landmarks[idx].Name] = true
		}
		var errSum float64
		n := 0
		for _, cp := range floor.Checkpoints {
			var ms []localization.Measurement
			for _, r := range grouped[cp.Name] {
				if !want[r.Landmark] {
					continue
				}
				lm := floor.Landmark(r.Landmark)
				ms = append(ms, localization.Measurement{
					Landmark: lm.Pos,
					Distance: fit.Distance(r.RxPower),
				})
			}
			if len(ms) < 3 {
				continue
			}
			est, err := localization.Trilaterate(ms)
			if err != nil {
				continue
			}
			est = floor.Bounds.Clamp(est)
			errSum += est.Dist(cp.Pos)
			n++
		}
		if n > 0 {
			comboErr.Add(errSum / float64(n))
		}
	}
	return comboErr
}

// fig10a declares one trial per QCI: each re-provisions its own testbed's
// retail policy at that QCI and probes the CI server.
func fig10a() Experiment {
	qcis := []pkt.QCI{5, 6, 7, 8, 9}
	return Experiment{
		ID:    "10a",
		Title: "Dedicated-bearer RTT by QCI (Fig. 10(a))",
		Trials: func(opts Options) []Trial {
			probes := 100
			if opts.Full {
				probes = 300
			}
			trials := make([]Trial, 0, len(qcis))
			for _, qci := range qcis {
				qci := qci
				trials = append(trials, Trial{
					Key: fmt.Sprintf("qci=%d", qci),
					Run: func(seed uint64) any {
						tb := core.NewTestbed(core.TestbedConfig{
							Seed:        seed,
							IdleTimeout: time.Hour,
							RadioJitter: time.Millisecond,
						})
						// Re-provision the retail policy with this QCI.
						tb.EPC.PCRF.AddRule(epc.PolicyRule{ServiceID: core.RetailPolicyID, QCI: qci, ARP: 2, Precedence: 10})
						b := tb.UEs[0]
						tb.MoveUE(b, retailSpot)
						if err := tb.Attach(b); err != nil {
							panic(err)
						}
						if err := tb.StartRetailApp(b, "electronics"); err != nil {
							panic(err)
						}
						tb.Run(5 * time.Second)
						b.Frontend.Stop()
						tb.Run(time.Second)
						pg := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 64, 7500)
						for i := 0; i < probes; i++ {
							pg.SendOne()
							tb.Run(30 * time.Millisecond)
						}
						tb.Run(time.Second)
						return metered([]any{fmt.Sprintf("QCI %d", qci),
							pg.RTTs.Median(), pg.RTTs.Percentile(95), pg.RTTs.Percentile(99)}, tb.Eng)
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("UE to MEC server RTT (ms) by dedicated-bearer QCI",
				"QCI", "median", "p95", "p99")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "10a", Title: Title("10a"), Tables: []*stats.Table{tbl},
				Notes: []string{"paper: 95% of RTTs within 15 ms regardless of QCI on an unloaded edge; eNB-MEC leg ≈1.6 ms"}}
		},
	}
}

// fig10b declares one trial per background-load point, comparing latency
// isolation across the three architectures on that trial's testbed.
func fig10b() Experiment {
	return Experiment{
		ID:    "10b",
		Title: "Latency isolation under background load (Fig. 10(b))",
		Trials: func(opts Options) []Trial {
			loads := fig10bLoads(opts)
			trials := make([]Trial, 0, len(loads))
			for _, load := range loads {
				load := load
				trials = append(trials, Trial{
					Key: fmt.Sprintf("bg=%gMbps", load/1e6),
					Run: func(seed uint64) any {
						conv, mec, acacia := measureIsolation(opts, seed, load)
						return []any{load / 1e6, conv, mec, acacia}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Latency (ms) vs background traffic by architecture",
				"bg (Mbps)", "Conventional EPC", "EPC with MEC", "ACACIA")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "10b", Title: Title("10b"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"below saturation the MEC server's proximity dominates; past ≈90 Mbps the shared core's queue grows while ACACIA's isolated edge path stays flat",
				}}
		},
	}
}

func fig10bLoads(opts Options) []float64 {
	if opts.Full {
		return []float64{0, 10e6, 20e6, 30e6, 40e6, 50e6, 60e6, 70e6, 80e6, 90e6, 100e6}
	}
	return []float64{0, 20e6, 40e6, 60e6, 80e6, 90e6, 100e6}
}

func measureIsolation(opts Options, seed uint64, bgBps float64) (conv, mec, acacia float64) {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
		RadioJitter: 1,
	})
	b := tb.UEs[0]
	tb.MoveUE(b, retailSpot)
	if err := tb.Attach(b); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(4 * time.Second)
	b.Frontend.Stop()
	tb.Run(500 * time.Millisecond)

	// AR-like load on the default bearer (it is what competes with the
	// background in the conventional/MEC cases).
	ar := netsim.NewCBRSource(b.UE.Host, tb.CentralMEC.Node.Addr(), 7300, 1250)
	ar.Start(12e6)
	bg := netsim.NewCBRSource(tb.BGSource, tb.BGSink.Node.Addr(), 9000, 1250)
	bg.Start(bgBps)

	dur := 12 * time.Second
	if opts.Full {
		dur = 25 * time.Second
	}
	pgConv := netsim.NewPinger(b.UE.Host, tb.CloudHosts["california"].Node.Addr(), 200, 7601)
	pgMEC := netsim.NewPinger(b.UE.Host, tb.CentralMEC.Node.Addr(), 200, 7602)
	pgEdge := netsim.NewPinger(b.UE.Host, tb.CIServer.Node.Addr(), 200, 7603)
	tb.Run(dur / 3)
	pgConv.Start(250 * time.Millisecond)
	pgMEC.Start(250 * time.Millisecond)
	pgEdge.Start(250 * time.Millisecond)
	tb.Run(dur * 2 / 3)
	pgConv.Stop()
	pgMEC.Stop()
	pgEdge.Stop()
	ar.Stop()
	bg.Stop()
	tb.Run(3 * time.Second)
	return pgConv.RTTs.Percentile(75), pgMEC.RTTs.Percentile(75), pgEdge.RTTs.Percentile(75)
}
