package experiments

import (
	"testing"
	"time"
)

// The partition benchmark family measures the many-site scenario (DESIGN.md
// §3g) under the three execution modes `make bench-partition` compares:
// one global event queue, conservative windows on one worker, and windows
// on a gang sized to the partition count (9 partitions: 8 sites + hub).
// The workload is identical across modes — the identity tests in
// intraparallel_test.go prove the outputs are too — so the ns/op ratio is
// pure engine overhead/speedup. On a multi-core host the gang mode spreads
// windows across cores; on a single-core host the remaining gain is cache
// locality from per-partition working sets.
func benchManySite(b *testing.B, workers int) {
	const (
		sites, ues = 8, 6
		vecLen     = 4096
		dur        = 500 * time.Millisecond
	)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := runManySite(12345, sites, ues, vecLen, workers, dur)
		sink += r.hubSeen
	}
	if sink == 0 {
		b.Fatal("scenario produced no hub traffic")
	}
}

func BenchmarkPartitionManySiteSequential(b *testing.B) { benchManySite(b, 0) }
func BenchmarkPartitionManySiteWindowed(b *testing.B)   { benchManySite(b, 1) }
func BenchmarkPartitionManySiteGang(b *testing.B)       { benchManySite(b, 9) }
