package experiments

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/media"
	"acacia/internal/sim"
	"acacia/internal/stats"
	"acacia/internal/trace"
)

func init() {
	registerSolo("compression", "AR front-end compression time and ratio (§7.3)", compressionTable)
	register(fig11a())
	register(fig11b())
	register(fig12())
	register(fig13())
}

func compressionTable(opts Options, seed uint64) *Result {
	tbl := stats.NewTable("JPEG 90 grayscale compression on the One+ One",
		"resolution", "encode (ms)", "ratio", "paper ms", "paper ratio")
	for _, c := range media.AppCompressionTable() {
		modeled := compute.OnePlusOne.JPEGTime(c.Resolution.Pixels()).Seconds() * 1000
		tbl.AddRow(c.Resolution.String(), modeled, c.Ratio, c.EncodeMS, c.Ratio)
	}
	// Demonstrate the real codec on a synthetic frame: ratio and fidelity
	// per quality setting.
	codec := stats.NewTable("Block-DCT codec on a synthetic 512x384 frame",
		"quality", "bytes", "ratio", "PSNR (dB)")
	frame := media.SyntheticFrame(512, 384, seed)
	raw := float64(len(frame.Pix))
	for _, q := range []int{50, 80, 90, 100} {
		data, err := media.Compress(frame, q)
		if err != nil {
			panic(err)
		}
		dec, err := media.Decompress(data)
		if err != nil {
			panic(err)
		}
		psnr, _ := media.PSNR(frame, dec)
		codec.AddRow(q, len(data), raw/float64(len(data)), psnr)
	}
	return &Result{ID: "compression", Title: Title("compression"), Tables: []*stats.Table{tbl, codec}}
}

// searchSpace computes, for each checkpoint of the floor, the candidate
// object count per scheme using real campaign measurements, and whether the
// true object's subsection is covered (accuracy).
type searchSpace struct {
	checkpoint string
	candidates map[core.Scheme]int
	covered    map[core.Scheme]bool
}

// searchSpacesSeed derives the campaign seed behind buildSearchSpaces. It
// deliberately ignores the experiment id: Figs. 11(a), 11(b) and 12 all
// evaluate the same measured search spaces, as in the paper.
func searchSpacesSeed(opts Options) uint64 { return subSeed(opts.BaseSeed(), "search-spaces") }

// buildSearchSpaces runs the localization pipeline offline over the
// campaign readings at every checkpoint. It is a pure function of the seed,
// so concurrent trials rebuild identical spaces.
func buildSearchSpaces(campaignSeed uint64) []searchSpace {
	floor := geo.RetailFloor()
	readings := trace.Campaign(floor, campaignSeed, 5)
	grouped := trace.ByCheckpoint(readings)
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)

	var out []searchSpace
	for _, cp := range floor.Checkpoints {
		rs := grouped[cp.Name]
		ss := searchSpace{
			checkpoint: cp.Name,
			candidates: map[core.Scheme]int{},
			covered:    map[core.Scheme]bool{},
		}
		trueCell := floor.SubsectionAt(cp.Pos)

		// Naive: everything.
		ss.candidates[core.SchemeNaive] = 21 * 5
		ss.covered[core.SchemeNaive] = true

		// rxPower: sections of the two strongest landmarks.
		best, second := "", ""
		bestRx, secondRx := -1e9, -1e9
		for _, r := range rs {
			if r.RxPower > bestRx {
				second, secondRx = best, bestRx
				best, bestRx = r.Landmark, r.RxPower
			} else if r.RxPower > secondRx {
				second, secondRx = r.Landmark, r.RxPower
			}
		}
		var sections []string
		for _, name := range []string{best, second} {
			if lm := floor.Landmark(name); lm != nil {
				sections = append(sections, lm.Section)
			}
		}
		cells := floor.SubsectionsOfSections(sections...)
		ss.candidates[core.SchemeRxPower] = len(cells) * 5
		for _, id := range cells {
			if trueCell != nil && id == trueCell.ID {
				ss.covered[core.SchemeRxPower] = true
			}
		}

		// ACACIA: trilateration + radius pruning.
		var ms []localization.Measurement
		for _, r := range rs {
			lm := floor.Landmark(r.Landmark)
			ms = append(ms, localization.Measurement{Landmark: lm.Pos, Distance: fit.Distance(r.RxPower)})
		}
		est, err := localization.Trilaterate(ms)
		if err != nil {
			est = cp.Pos // degenerate geometry: never happens with 7 landmarks
		}
		est = floor.Bounds.Clamp(est)
		prune := floor.SubsectionsNear(est, core.PruneRadius)
		ss.candidates[core.SchemeACACIA] = len(prune) * 5
		for _, id := range prune {
			if trueCell != nil && id == trueCell.ID {
				ss.covered[core.SchemeACACIA] = true
			}
		}
		out = append(out, ss)
	}
	return out
}

var fig11Schemes = []core.Scheme{core.SchemeACACIA, core.SchemeRxPower, core.SchemeNaive}

// matchTimesMS returns per-checkpoint match times for a scheme on a device
// at a resolution, derived from the candidate counts.
func matchTimesMS(spaces []searchSpace, scheme core.Scheme, dev compute.Device, res compute.Resolution) []float64 {
	out := make([]float64, 0, len(spaces))
	for _, ss := range spaces {
		macs := matchMACs(res, core.DBObjectFeatures, ss.candidates[scheme])
		out = append(out, dev.MatchTime(macs).Seconds()*1000)
	}
	return out
}

// fig11a declares one trial per (resolution, machine) timing cell plus an
// accuracy trial; every trial rebuilds the shared search spaces from the
// same sub-seed.
func fig11a() Experiment {
	devices := []compute.Device{compute.I7x8, compute.Xeon32}
	return Experiment{
		ID:    "11a",
		Title: "Match runtime by search-space scheme (Fig. 11(a))",
		Trials: func(opts Options) []Trial {
			campaign := searchSpacesSeed(opts)
			var trials []Trial
			for _, res := range compute.AppResolutions {
				for _, dev := range devices {
					res, dev := res, dev
					trials = append(trials, Trial{
						Key: fmt.Sprintf("res=%s/dev=%s", res, dev.Name),
						Run: func(uint64) any {
							spaces := buildSearchSpaces(campaign)
							var means [3]float64
							for i, scheme := range fig11Schemes {
								var s stats.Sample
								s.AddAll(matchTimesMS(spaces, scheme, dev, res)...)
								means[i] = s.Mean()
							}
							return []any{fmt.Sprintf("%s (%s)", dev.Name, res),
								means[0], means[1], means[2], stats.Ratio(means[2], means[0])}
						},
					})
				}
			}
			trials = append(trials, Trial{
				Key: "accuracy",
				Run: func(uint64) any {
					spaces := buildSearchSpaces(campaign)
					var rows [][]any
					for _, scheme := range fig11Schemes {
						covered := 0
						for _, ss := range spaces {
							if ss.covered[scheme] {
								covered++
							}
						}
						rows = append(rows, []any{scheme.String(), covered, len(spaces) - covered})
					}
					return rows
				},
			})
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Mean match time (ms) by scheme",
				"machine (resolution)", "ACACIA", "rxPower", "Naive", "speedup vs Naive")
			for _, p := range parts[:len(parts)-1] {
				tbl.AddRow(p.([]any)...)
			}
			acc := stats.NewTable("Search accuracy across the 24 checkpoints",
				"scheme", "covered", "false negatives")
			for _, row := range parts[len(parts)-1].([][]any) {
				acc.AddRow(row...)
			}
			return &Result{ID: "11a", Title: Title("11a"), Tables: []*stats.Table{tbl, acc},
				Notes: []string{
					"paper: up to 5.02x mean reduction vs Naive and 1.93x vs rxPower",
					"paper: rxPower suffers one boundary false negative (C13); ACACIA and Naive find every object",
				}}
		},
	}
}

// fig11b declares one trial per (scheme, machine) distribution row at
// 960x720, over the shared search spaces.
func fig11b() Experiment {
	res := compute.Resolution{W: 960, H: 720}
	devices := []compute.Device{compute.Xeon32, compute.I7x8}
	return Experiment{
		ID:    "11b",
		Title: "Match runtime distribution at 960x720 (Fig. 11(b))",
		Trials: func(opts Options) []Trial {
			campaign := searchSpacesSeed(opts)
			var trials []Trial
			for _, scheme := range fig11Schemes {
				for _, dev := range devices {
					scheme, dev := scheme, dev
					trials = append(trials, Trial{
						Key: fmt.Sprintf("scheme=%s/dev=%s", scheme, dev.Name),
						Run: func(uint64) any {
							spaces := buildSearchSpaces(campaign)
							var s stats.Sample
							s.AddAll(matchTimesMS(spaces, scheme, dev, res)...)
							return []any{fmt.Sprintf("%s (%s)", scheme, dev.Name),
								s.Percentile(25), s.Median(), s.Percentile(75), s.Percentile(95), s.Max()}
						},
					})
				}
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Match runtime (ms) distribution at 960x720",
				"scheme (machine)", "p25", "median", "p75", "p95", "max")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "11b", Title: Title("11b"), Tables: []*stats.Table{tbl},
				Notes: []string{"paper: without location pruning some frames exceed 1 s on the i7"}}
		},
	}
}

// fig12 declares one trial per (machine, client count): each runs N
// concurrent closed-loop clients against its own processor-sharing server.
func fig12() Experiment {
	res := compute.Resolution{W: 960, H: 720}
	devices := []compute.Device{compute.Xeon32, compute.I7x8}
	clientCounts := []int{1, 2, 4, 8}
	return Experiment{
		ID:    "12",
		Title: "Match runtime vs number of clients (Fig. 12)",
		Trials: func(opts Options) []Trial {
			campaign := searchSpacesSeed(opts)
			var trials []Trial
			for _, dev := range devices {
				for _, n := range clientCounts {
					dev, n := dev, n
					trials = append(trials, Trial{
						Key: fmt.Sprintf("dev=%s/clients=%d", dev.Name, n),
						Run: func(seed uint64) any {
							spaces := buildSearchSpaces(campaign)
							row := make([]float64, 0, len(fig11Schemes))
							for _, scheme := range fig11Schemes {
								row = append(row, multiClientMatchMS(seed, spaces, scheme, dev, res, n))
							}
							return row
						},
					})
				}
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			var tables []*stats.Table
			i := 0
			for _, dev := range devices {
				tbl := stats.NewTable(fmt.Sprintf("Match time (ms) vs clients on %s", dev.Name),
					"clients", "ACACIA", "rxPower", "Naive")
				for _, n := range clientCounts {
					vals := parts[i].([]float64)
					i++
					tbl.AddRow(n, vals[0], vals[1], vals[2])
				}
				tables = append(tables, tbl)
			}
			return &Result{ID: "12", Title: Title("12"), Tables: tables,
				Notes: []string{"paper: runtime roughly doubles with each doubling of concurrent clients (processor sharing)"}}
		},
	}
}

// multiClientMatchMS submits each client's closed-loop match jobs to one
// processor-sharing server and reports the mean per-job time.
func multiClientMatchMS(seed uint64, spaces []searchSpace, scheme core.Scheme, dev compute.Device, res compute.Resolution, clients int) float64 {
	eng := sim.NewEngine(seed)
	srv := compute.NewServer(eng, dev)
	var sample stats.Sample
	rounds := 6
	var submit func(client, round int)
	submit = func(client, round int) {
		if round >= rounds {
			return
		}
		ss := spaces[(client*7+round)%len(spaces)]
		macs := matchMACs(res, core.DBObjectFeatures, ss.candidates[scheme])
		srv.Submit(&compute.Job{Work: macs, Done: func(elapsed time.Duration) {
			sample.Add(elapsed.Seconds() * 1000)
			submit(client, round+1)
		}})
	}
	for c := 0; c < clients; c++ {
		submit(c, 0)
	}
	eng.Run()
	return sample.Mean()
}

// fig13Means is one deployment's per-frame latency decomposition.
type fig13Means struct {
	match, compute, network, total float64
}

// fig13 declares one trial per deployment (ACACIA, MEC, CLOUD): each runs
// the full end-to-end pipeline on its own testbed.
func fig13() Experiment {
	type config struct {
		name   string
		scheme core.Scheme
		cloud  bool
	}
	configs := []config{
		{"ACACIA", core.SchemeACACIA, false},
		{"MEC", core.SchemeNaive, false},
		{"CLOUD", core.SchemeNaive, true},
	}
	return Experiment{
		ID:    "13",
		Title: "End-to-end latency decomposition (Fig. 13)",
		Trials: func(opts Options) []Trial {
			dur := 40 * time.Second
			if opts.Full {
				dur = 120 * time.Second
			}
			trials := make([]Trial, 0, len(configs))
			for _, c := range configs {
				c := c
				trials = append(trials, Trial{
					Key: "deployment=" + c.name,
					Run: func(seed uint64) any {
						tb := core.NewTestbed(core.TestbedConfig{
							Seed:          seed,
							IdleTimeout:   time.Hour,
							Scheme:        c.scheme,
							IntraParallel: opts.IntraParallel,
						})
						b := tb.UEs[0]
						tb.MoveUE(b, retailSpot)
						if err := tb.Attach(b); err != nil {
							panic(err)
						}
						if c.cloud {
							// CLOUD baseline: conventional EPC, AR server in the
							// cloud, default bearer, Naive search.
							b.Frontend.Start(tb.CloudHosts["california"].Node.Addr())
						} else if err := tb.StartRetailApp(b, "electronics"); err != nil {
							panic(err)
						}
						tb.Run(dur)
						st := &b.Frontend.Stats
						// Snapshot via the testbed so partitioned runs merge
						// their per-partition registries (identical to the
						// single-registry snapshot in legacy mode).
						return Metered{Part: fig13Means{
							match:   st.Match.Mean(),
							compute: st.Compute.Mean(),
							network: st.Network.Mean(),
							total:   st.Total.Mean(),
						}, Snap: tb.MetricsSnapshot()}
					},
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			acacia := parts[0].(fig13Means)
			mec := parts[1].(fig13Means)
			cloud := parts[2].(fig13Means)
			tbl := stats.NewTable("End-to-end per-frame latency decomposition (ms) at 720x480",
				"component", "ACACIA", "MEC", "CLOUD")
			tbl.AddRow("Match", acacia.match, mec.match, cloud.match)
			tbl.AddRow("Compute", acacia.compute, mec.compute, cloud.compute)
			tbl.AddRow("Network", acacia.network, mec.network, cloud.network)
			tbl.AddRow("Total", acacia.total, mec.total, cloud.total)
			red := stats.NewTable("Total latency reductions", "comparison", "measured", "paper")
			red.AddRow("ACACIA vs CLOUD", fmt.Sprintf("%.0f%%", 100*(1-acacia.total/cloud.total)), "70%")
			red.AddRow("ACACIA vs MEC", fmt.Sprintf("%.0f%%", 100*(1-acacia.total/mec.total)), "60%")
			red.AddRow("MEC vs CLOUD", fmt.Sprintf("%.0f%%", 100*(1-mec.total/cloud.total)), "25%")
			red.AddRow("Match reduction (ACACIA)", fmt.Sprintf("%.1fx", mec.match/acacia.match), "7.7x")
			red.AddRow("Network reduction vs CLOUD", fmt.Sprintf("%.2fx", cloud.network/acacia.network), "3.15x")
			return &Result{ID: "13", Title: Title("13"), Tables: []*stats.Table{tbl, red}}
		},
	}
}
