package experiments

import (
	"fmt"
	"time"

	"acacia/internal/compute"
	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/media"
	"acacia/internal/stats"
	"acacia/internal/trace"
)

func init() {
	register("compression", "AR front-end compression time and ratio (§7.3)", compressionTable)
	register("11a", "Match runtime by search-space scheme (Fig. 11(a))", fig11a)
	register("11b", "Match runtime distribution at 960x720 (Fig. 11(b))", fig11b)
	register("12", "Match runtime vs number of clients (Fig. 12)", fig12)
	register("13", "End-to-end latency decomposition (Fig. 13)", fig13)
}

func compressionTable(opts Options) *Result {
	tbl := stats.NewTable("JPEG 90 grayscale compression on the One+ One",
		"resolution", "encode (ms)", "ratio", "paper ms", "paper ratio")
	for _, c := range media.AppCompressionTable() {
		modeled := compute.OnePlusOne.JPEGTime(c.Resolution.Pixels()).Seconds() * 1000
		tbl.AddRow(c.Resolution.String(), modeled, c.Ratio, c.EncodeMS, c.Ratio)
	}
	// Demonstrate the real codec on a synthetic frame: ratio and fidelity
	// per quality setting.
	codec := stats.NewTable("Block-DCT codec on a synthetic 512x384 frame",
		"quality", "bytes", "ratio", "PSNR (dB)")
	frame := media.SyntheticFrame(512, 384, opts.seed())
	raw := float64(len(frame.Pix))
	for _, q := range []int{50, 80, 90, 100} {
		data, err := media.Compress(frame, q)
		if err != nil {
			panic(err)
		}
		dec, err := media.Decompress(data)
		if err != nil {
			panic(err)
		}
		psnr, _ := media.PSNR(frame, dec)
		codec.AddRow(q, len(data), raw/float64(len(data)), psnr)
	}
	return &Result{ID: "compression", Title: Title("compression"), Tables: []*stats.Table{tbl, codec}}
}

// searchSpace computes, for each checkpoint of the floor, the candidate
// object count per scheme using real campaign measurements, and whether the
// true object's subsection is covered (accuracy).
type searchSpace struct {
	checkpoint string
	candidates map[core.Scheme]int
	covered    map[core.Scheme]bool
}

// buildSearchSpaces runs the localization pipeline offline over the
// campaign readings at every checkpoint.
func buildSearchSpaces(opts Options) []searchSpace {
	floor := geo.RetailFloor()
	readings := trace.Campaign(floor, opts.seed(), 5)
	grouped := trace.ByCheckpoint(readings)
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)

	var out []searchSpace
	for _, cp := range floor.Checkpoints {
		rs := grouped[cp.Name]
		ss := searchSpace{
			checkpoint: cp.Name,
			candidates: map[core.Scheme]int{},
			covered:    map[core.Scheme]bool{},
		}
		trueCell := floor.SubsectionAt(cp.Pos)

		// Naive: everything.
		ss.candidates[core.SchemeNaive] = 21 * 5
		ss.covered[core.SchemeNaive] = true

		// rxPower: sections of the two strongest landmarks.
		best, second := "", ""
		bestRx, secondRx := -1e9, -1e9
		for _, r := range rs {
			if r.RxPower > bestRx {
				second, secondRx = best, bestRx
				best, bestRx = r.Landmark, r.RxPower
			} else if r.RxPower > secondRx {
				second, secondRx = r.Landmark, r.RxPower
			}
		}
		var sections []string
		for _, name := range []string{best, second} {
			if lm := floor.Landmark(name); lm != nil {
				sections = append(sections, lm.Section)
			}
		}
		cells := floor.SubsectionsOfSections(sections...)
		ss.candidates[core.SchemeRxPower] = len(cells) * 5
		for _, id := range cells {
			if trueCell != nil && id == trueCell.ID {
				ss.covered[core.SchemeRxPower] = true
			}
		}

		// ACACIA: trilateration + radius pruning.
		var ms []localization.Measurement
		for _, r := range rs {
			lm := floor.Landmark(r.Landmark)
			ms = append(ms, localization.Measurement{Landmark: lm.Pos, Distance: fit.Distance(r.RxPower)})
		}
		est, err := localization.Trilaterate(ms)
		if err != nil {
			est = cp.Pos // degenerate geometry: never happens with 7 landmarks
		}
		est = floor.Bounds.Clamp(est)
		prune := floor.SubsectionsNear(est, core.PruneRadius)
		ss.candidates[core.SchemeACACIA] = len(prune) * 5
		for _, id := range prune {
			if trueCell != nil && id == trueCell.ID {
				ss.covered[core.SchemeACACIA] = true
			}
		}
		out = append(out, ss)
	}
	return out
}

var fig11Schemes = []core.Scheme{core.SchemeACACIA, core.SchemeRxPower, core.SchemeNaive}

// matchTimesMS returns per-checkpoint match times for a scheme on a device
// at a resolution, derived from the candidate counts.
func matchTimesMS(spaces []searchSpace, scheme core.Scheme, dev compute.Device, res compute.Resolution) []float64 {
	out := make([]float64, 0, len(spaces))
	for _, ss := range spaces {
		macs := matchMACs(res, core.DBObjectFeatures, ss.candidates[scheme])
		out = append(out, dev.MatchTime(macs).Seconds()*1000)
	}
	return out
}

func fig11a(opts Options) *Result {
	spaces := buildSearchSpaces(opts)
	devices := []compute.Device{compute.I7x8, compute.Xeon32}
	tbl := stats.NewTable("Mean match time (ms) by scheme",
		"machine (resolution)", "ACACIA", "rxPower", "Naive", "speedup vs Naive")
	for _, res := range compute.AppResolutions {
		for _, dev := range devices {
			var means [3]float64
			for i, scheme := range fig11Schemes {
				var s stats.Sample
				s.AddAll(matchTimesMS(spaces, scheme, dev, res)...)
				means[i] = s.Mean()
			}
			tbl.AddRow(fmt.Sprintf("%s (%s)", dev.Name, res), means[0], means[1], means[2],
				stats.Ratio(means[2], means[0]))
		}
	}
	// Accuracy: false negatives per scheme across checkpoints.
	acc := stats.NewTable("Search accuracy across the 24 checkpoints",
		"scheme", "covered", "false negatives")
	for _, scheme := range fig11Schemes {
		covered := 0
		for _, ss := range spaces {
			if ss.covered[scheme] {
				covered++
			}
		}
		acc.AddRow(scheme.String(), covered, len(spaces)-covered)
	}
	return &Result{ID: "11a", Title: Title("11a"), Tables: []*stats.Table{tbl, acc},
		Notes: []string{
			"paper: up to 5.02x mean reduction vs Naive and 1.93x vs rxPower",
			"paper: rxPower suffers one boundary false negative (C13); ACACIA and Naive find every object",
		}}
}

func fig11b(opts Options) *Result {
	spaces := buildSearchSpaces(opts)
	res := compute.Resolution{W: 960, H: 720}
	tbl := stats.NewTable("Match runtime (ms) distribution at 960x720",
		"scheme (machine)", "p25", "median", "p75", "p95", "max")
	for _, scheme := range fig11Schemes {
		for _, dev := range []compute.Device{compute.Xeon32, compute.I7x8} {
			var s stats.Sample
			s.AddAll(matchTimesMS(spaces, scheme, dev, res)...)
			tbl.AddRow(fmt.Sprintf("%s (%s)", scheme, dev.Name),
				s.Percentile(25), s.Median(), s.Percentile(75), s.Percentile(95), s.Max())
		}
	}
	return &Result{ID: "11b", Title: Title("11b"), Tables: []*stats.Table{tbl},
		Notes: []string{"paper: without location pruning some frames exceed 1 s on the i7"}}
}

// fig12 runs N concurrent clients against a processor-sharing server.
func fig12(opts Options) *Result {
	spaces := buildSearchSpaces(opts)
	res := compute.Resolution{W: 960, H: 720}
	clientCounts := []int{1, 2, 4, 8}
	var tables []*stats.Table
	for _, dev := range []compute.Device{compute.Xeon32, compute.I7x8} {
		tbl := stats.NewTable(fmt.Sprintf("Match time (ms) vs clients on %s", dev.Name),
			"clients", "ACACIA", "rxPower", "Naive")
		for _, n := range clientCounts {
			row := []any{n}
			for _, scheme := range fig11Schemes {
				row = append(row, multiClientMatchMS(opts, spaces, scheme, dev, res, n))
			}
			tbl.AddRow(row...)
		}
		tables = append(tables, tbl)
	}
	return &Result{ID: "12", Title: Title("12"), Tables: tables,
		Notes: []string{"paper: runtime roughly doubles with each doubling of concurrent clients (processor sharing)"}}
}

// multiClientMatchMS submits each client's closed-loop match jobs to one
// processor-sharing server and reports the mean per-job time.
func multiClientMatchMS(opts Options, spaces []searchSpace, scheme core.Scheme, dev compute.Device, res compute.Resolution, clients int) float64 {
	eng := newEngine(opts)
	srv := compute.NewServer(eng, dev)
	var sample stats.Sample
	rounds := 6
	var submit func(client, round int)
	submit = func(client, round int) {
		if round >= rounds {
			return
		}
		ss := spaces[(client*7+round)%len(spaces)]
		macs := matchMACs(res, core.DBObjectFeatures, ss.candidates[scheme])
		srv.Submit(&compute.Job{Work: macs, Done: func(elapsed time.Duration) {
			sample.Add(elapsed.Seconds() * 1000)
			submit(client, round+1)
		}})
	}
	for c := 0; c < clients; c++ {
		submit(c, 0)
	}
	eng.Run()
	return sample.Mean()
}

// fig13 runs the full end-to-end comparison on the testbed.
func fig13(opts Options) *Result {
	dur := 40 * time.Second
	if opts.Full {
		dur = 120 * time.Second
	}
	type config struct {
		name string
		run  func() *core.ARFrontend
	}
	runACACIA := func(scheme core.Scheme, cloud bool) *core.ARFrontend {
		tb := core.NewTestbed(core.TestbedConfig{
			Seed:        opts.seed(),
			IdleTimeout: time.Hour,
			Scheme:      scheme,
		})
		b := tb.UEs[0]
		tb.MoveUE(b, retailSpot)
		if err := tb.Attach(b); err != nil {
			panic(err)
		}
		if cloud {
			// CLOUD baseline: conventional EPC, AR server in the cloud,
			// default bearer, Naive search.
			b.Frontend.Start(tb.CloudHosts["california"].Node.Addr())
			tb.Run(dur)
			return b.Frontend
		}
		if err := tb.StartRetailApp(b, "electronics"); err != nil {
			panic(err)
		}
		tb.Run(dur)
		return b.Frontend
	}
	configs := []config{
		{"ACACIA", func() *core.ARFrontend { return runACACIA(core.SchemeACACIA, false) }},
		{"MEC", func() *core.ARFrontend { return runACACIA(core.SchemeNaive, false) }},
		{"CLOUD", func() *core.ARFrontend { return runACACIA(core.SchemeNaive, true) }},
	}
	tbl := stats.NewTable("End-to-end per-frame latency decomposition (ms) at 720x480",
		"component", "ACACIA", "MEC", "CLOUD")
	var fes []*core.ARFrontend
	for _, c := range configs {
		fes = append(fes, c.run())
	}
	rows := []struct {
		name string
		get  func(*core.FrameStats) float64
	}{
		{"Match", func(s *core.FrameStats) float64 { return s.Match.Mean() }},
		{"Compute", func(s *core.FrameStats) float64 { return s.Compute.Mean() }},
		{"Network", func(s *core.FrameStats) float64 { return s.Network.Mean() }},
		{"Total", func(s *core.FrameStats) float64 { return s.Total.Mean() }},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, r.get(&fes[0].Stats), r.get(&fes[1].Stats), r.get(&fes[2].Stats))
	}
	red := stats.NewTable("Total latency reductions", "comparison", "measured", "paper")
	acacia := fes[0].Stats.Total.Mean()
	mec := fes[1].Stats.Total.Mean()
	cloud := fes[2].Stats.Total.Mean()
	red.AddRow("ACACIA vs CLOUD", fmt.Sprintf("%.0f%%", 100*(1-acacia/cloud)), "70%")
	red.AddRow("ACACIA vs MEC", fmt.Sprintf("%.0f%%", 100*(1-acacia/mec)), "60%")
	red.AddRow("MEC vs CLOUD", fmt.Sprintf("%.0f%%", 100*(1-mec/cloud)), "25%")
	red.AddRow("Match reduction (ACACIA)", fmt.Sprintf("%.1fx", fes[1].Stats.Match.Mean()/fes[0].Stats.Match.Mean()), "7.7x")
	red.AddRow("Network reduction vs CLOUD", fmt.Sprintf("%.2fx", fes[2].Stats.Network.Mean()/fes[0].Stats.Network.Mean()), "3.15x")
	return &Result{ID: "13", Title: Title("13"), Tables: []*stats.Table{tbl, red}}
}
