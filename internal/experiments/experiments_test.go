package experiments

import (
	"strconv"
	"strings"
	"testing"

	"acacia/internal/epc"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "overhead", "control-loss",
		"robust-failover", "mobility-continuity",
		"6", "8", "9", "10a", "10b",
		"compression", "11a", "11b", "12", "13", "many-site", "scale",
		"ablation-fastpath", "ablation-bearer", "ablation-stages", "ablation-radius", "ablation-solver", "ablation-qci", "ablation-index",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d: %v", len(got), len(want), got)
	}
	have := map[string]bool{}
	for _, id := range got {
		have[id] = true
		if Title(id) == "" {
			t.Errorf("experiment %q has no title", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id accepted")
	}
}

// cell fetches a table cell by row/col index, parsing floats.
func cell(t *testing.T, r *Result, table, row, col int) float64 {
	t.Helper()
	tb := r.Tables[table]
	raw := tb.Rows[row][col]
	raw = strings.TrimSuffix(raw, "%")
	raw = strings.TrimSuffix(raw, "x")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("cell[%d][%d][%d] = %q not numeric", table, row, col, raw)
	}
	return v
}

func TestFig3aShape(t *testing.T) {
	r, err := Run("3a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Phone 320x240 = 2 s; each device column strictly faster left-to-right.
	if got := cell(t, r, 0, 0, 2); got != 2 {
		t.Errorf("phone anchor = %v, want 2 s", got)
	}
	for row := 0; row < len(r.Tables[0].Rows); row++ {
		prev := cell(t, r, 0, row, 2)
		for col := 3; col <= 5; col++ {
			v := cell(t, r, 0, row, col)
			if v >= prev {
				t.Errorf("row %d: device col %d (%v) not faster than previous (%v)", row, col, v, prev)
			}
			prev = v
		}
	}
}

func TestFig3bSpeedupsMatchPaper(t *testing.T) {
	r, err := Run("3b", Options{})
	if err != nil {
		t.Fatal(err)
	}
	speed := r.Tables[1]
	for i, want := range []float64{223, 852, 3284} {
		got, _ := strconv.ParseFloat(speed.Rows[i][1], 64)
		if got < want*0.95 || got > want*1.05 {
			t.Errorf("%s speedup = %v, want ≈%v", speed.Rows[i][0], got, want)
		}
	}
}

func TestFig3cOrdering(t *testing.T) {
	r, err := Run("3c", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ca := cell(t, r, 0, 0, 3)
	or := cell(t, r, 0, 1, 3)
	va := cell(t, r, 0, 2, 3)
	if !(ca < or && or < va) {
		t.Errorf("median ordering CA=%v OR=%v VA=%v", ca, or, va)
	}
	// Paper: California median ≈70 ms.
	if ca < 55 || ca > 90 {
		t.Errorf("California median = %v ms, want ≈70", ca)
	}
}

func TestFig3dBandwidth(t *testing.T) {
	r, err := Run("3d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := 13.0
	for row := 0; row < 3; row++ {
		exc := cell(t, r, 0, row, 1)
		fair := cell(t, r, 0, row, 2)
		if exc <= fair {
			t.Errorf("row %d: excellent (%v) <= fair (%v)", row, exc, fair)
		}
		// Paper: California peaks ≈12 Mbps; farther regions achieve less
		// (longer RTTs slow the window ramp).
		if exc > prev+0.5 {
			t.Errorf("row %d: throughput %v rose with distance (prev %v)", row, exc, prev)
		}
		prev = exc
	}
	if ca := cell(t, r, 0, 0, 1); ca < 10 || ca > 12.5 {
		t.Errorf("California excellent = %v Mbps, want ≈12", ca)
	}
	if va := cell(t, r, 0, 2, 1); va < 5 {
		t.Errorf("Virginia excellent = %v Mbps, implausibly low", va)
	}
}

func TestFig3fShape(t *testing.T) {
	r, err := Run("3f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	// Raw at 12 Mbps < 1 FPS (last row, last col); JPEG 90 ≈ 8.
	rawFPS := cell(t, r, 0, len(tb.Rows)-1, 3)
	if rawFPS >= 1 {
		t.Errorf("raw FPS = %v, want < 1", rawFPS)
	}
	jpeg90 := cell(t, r, 0, 2, 3)
	if jpeg90 < 7 || jpeg90 > 9 {
		t.Errorf("JPEG 90 FPS = %v, want ≈8", jpeg90)
	}
}

func TestOverheadMatchesPaperCounts(t *testing.T) {
	r, err := Run("overhead", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	for i, want := range []float64{7, 4, 4, 15} {
		got := cell(t, r, 0, i, 1)
		if got != want {
			t.Errorf("%s messages = %v, want %v", tb.Rows[i][0], got, want)
		}
	}
}

func TestControlLossShape(t *testing.T) {
	r, err := Run("control-loss", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("control-loss has %d rows, want 5 loss rates", len(tb.Rows))
	}
	// Loss-free baseline: both procedures complete without retransmissions.
	if tb.Rows[0][1] != "ok" || tb.Rows[0][2] != "ok" {
		t.Errorf("loss-free row = %v, want attach/bearer ok", tb.Rows[0])
	}
	if got := cell(t, r, 0, 0, 3); got != 0 {
		t.Errorf("loss-free retransmissions = %v, want 0", got)
	}
	// Injected loss must exercise the recovery machinery somewhere.
	var retrans float64
	for i := 1; i < len(tb.Rows); i++ {
		retrans += cell(t, r, 0, i, 3)
	}
	if retrans == 0 {
		t.Error("no retransmissions across any lossy trial")
	}
	// Every row terminated: no procedure may hang regardless of loss.
	for i, row := range tb.Rows {
		if row[2] == "HUNG" {
			t.Errorf("row %d: bearer activation hung under loss", i)
		}
	}
	if r.Metrics == nil {
		t.Fatal("control-loss carries no metrics snapshot")
	}
	if _, ok := r.Metrics.Get("epc/txn/sent"); !ok {
		t.Error("metrics lack the epc/txn/sent counter")
	}
}

func TestMeasureCycleMatchesEPCBudget(t *testing.T) {
	msgs, bytes, delta := measureCycle(Options{}, DefaultSeed)
	if msgs[epc.ProtoS1AP] != 7 || msgs[epc.ProtoGTPv2] != 4 || msgs[epc.ProtoOpenFlow] != 4 {
		t.Errorf("cycle messages = %v", msgs)
	}
	var total uint64
	for _, b := range bytes {
		total += b
	}
	if total < 900 || total > 4500 {
		t.Errorf("cycle bytes = %d", total)
	}
	// The counts are read from the unified registry delta; cross-check the
	// paper's §4 message counts directly against the snapshot, and confirm
	// the cycle left its state transitions on the timeline.
	if delta == nil {
		t.Fatal("measureCycle returned no registry delta")
	}
	if got := delta.CounterValue("epc/s1ap/msgs"); got != 7 {
		t.Errorf("registry epc/s1ap/msgs delta = %d, want 7", got)
	}
	if got := delta.CounterValue("epc/gtpv2/msgs"); got != 4 {
		t.Errorf("registry epc/gtpv2/msgs delta = %d, want 4", got)
	}
	if got := delta.CounterValue("sdn/controller/sent"); got != 4 {
		t.Errorf("registry sdn/controller/sent delta = %d, want 4", got)
	}
	states := map[string]bool{}
	for _, e := range delta.Events {
		if e.Name == "state" {
			states[e.Detail] = true
		}
	}
	for _, want := range []string{"idle", "promoting", "connected"} {
		if !states[want] {
			t.Errorf("timeline lacks a %q session-state event over the cycle (got %v)", want, states)
		}
	}
}

func TestFig8Ordering(t *testing.T) {
	r, err := Run("8", Options{})
	if err != nil {
		t.Fatal(err)
	}
	avg := r.Tables[1]
	openepc, _ := strconv.ParseFloat(avg.Rows[0][1], 64)
	acacia, _ := strconv.ParseFloat(avg.Rows[1][1], 64)
	ideal, _ := strconv.ParseFloat(avg.Rows[2][1], 64)
	if !(openepc < acacia && acacia <= ideal*1.01) {
		t.Errorf("ordering: openepc=%v acacia=%v ideal=%v", openepc, acacia, ideal)
	}
	if acacia < 0.85*ideal {
		t.Errorf("ACACIA (%v) should track ideal (%v)", acacia, ideal)
	}
}

func TestFig9ErrorDecreasesWithLandmarks(t *testing.T) {
	r, err := Run("9", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	first := cell(t, r, 0, 0, 2)             // mean error with 3 landmarks
	last := cell(t, r, 0, len(tb.Rows)-1, 2) // with 7
	if last >= first {
		t.Errorf("mean error did not improve: 3 landmarks %v vs 7 landmarks %v", first, last)
	}
	if last > 5 {
		t.Errorf("7-landmark mean error = %v m, paper ≈3 m", last)
	}
	// Best-worst spread shrinks with more landmarks.
	spreadFirst := cell(t, r, 0, 0, 3) - cell(t, r, 0, 0, 1)
	spreadLast := cell(t, r, 0, len(tb.Rows)-1, 3) - cell(t, r, 0, len(tb.Rows)-1, 1)
	if spreadLast >= spreadFirst {
		t.Errorf("best/worst spread did not shrink: %v vs %v", spreadFirst, spreadLast)
	}
}

func TestFig11aShape(t *testing.T) {
	r, err := Run("11a", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	for row := range tb.Rows {
		acacia := cell(t, r, 0, row, 1)
		rxp := cell(t, r, 0, row, 2)
		naive := cell(t, r, 0, row, 3)
		if !(acacia < rxp && rxp < naive) {
			t.Errorf("row %d ordering: %v %v %v", row, acacia, rxp, naive)
		}
		speedup := cell(t, r, 0, row, 4)
		if speedup < 3.5 || speedup > 11 {
			t.Errorf("row %d speedup = %v, paper up to 5.02x", row, speedup)
		}
	}
	// Accuracy table: ACACIA and Naive full coverage; rxPower may miss.
	acc := r.Tables[1]
	for _, row := range acc.Rows {
		fn, _ := strconv.ParseFloat(row[2], 64)
		switch row[0] {
		case "ACACIA", "Naive":
			if fn != 0 {
				t.Errorf("%s false negatives = %v", row[0], fn)
			}
		case "rxPower":
			if fn < 1 {
				t.Errorf("rxPower false negatives = %v, paper reports boundary misses", fn)
			}
		}
	}
}

func TestFig12Scaling(t *testing.T) {
	r, err := Run("12", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tblIdx := range []int{0, 1} {
		tb := r.Tables[tblIdx]
		for col := 1; col <= 3; col++ {
			one := cell(t, r, tblIdx, 0, col)
			eight := cell(t, r, tblIdx, 3, col)
			ratio := eight / one
			// Unequal per-round job sizes let concurrency fluctuate around
			// 8, so allow some spread about the ideal 8x.
			if ratio < 5 || ratio > 10 {
				t.Errorf("%s col %d: 8-client/1-client = %.2f, want ≈8 (processor sharing)", tb.Title, col, ratio)
			}
		}
	}
}

func TestFig13Reductions(t *testing.T) {
	r, err := Run("13", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	get := func(row, col int) float64 { return cell(t, r, 0, row, col) }
	_ = tb
	acaciaTotal, mecTotal, cloudTotal := get(3, 1), get(3, 2), get(3, 3)
	if !(acaciaTotal < mecTotal && mecTotal < cloudTotal) {
		t.Fatalf("totals: acacia=%v mec=%v cloud=%v", acaciaTotal, mecTotal, cloudTotal)
	}
	redVsCloud := 1 - acaciaTotal/cloudTotal
	if redVsCloud < 0.55 || redVsCloud > 0.85 {
		t.Errorf("ACACIA vs CLOUD reduction = %.0f%%, paper 70%%", redVsCloud*100)
	}
	redVsMEC := 1 - acaciaTotal/mecTotal
	if redVsMEC < 0.45 || redVsMEC > 0.85 {
		t.Errorf("ACACIA vs MEC reduction = %.0f%%, paper 60%%", redVsMEC*100)
	}
	// Match dominates the MEC/CLOUD bars; network is where CLOUD loses.
	if get(0, 1) >= get(0, 2) {
		t.Error("ACACIA match not below MEC match")
	}
	if get(2, 3) <= get(2, 1) {
		t.Error("CLOUD network not above ACACIA network")
	}
}

func TestAblationRadiusCoverage(t *testing.T) {
	r, err := Run("ablation-radius", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	// Candidates grow with radius; the default 6 m achieves full coverage.
	prev := 0.0
	for row := range tb.Rows {
		c := cell(t, r, 0, row, 1)
		if c < prev {
			t.Errorf("candidates shrank at row %d", row)
		}
		prev = c
	}
	// Tight radii lose coverage under ~3 m localization error; by 9 m the
	// true cell is always included.
	if cov := cell(t, r, 0, 0, 2); cov > 95 {
		t.Errorf("coverage at 2 m = %v%%, expected losses", cov)
	}
	if cov := cell(t, r, 0, 3, 2); cov < 99 {
		t.Errorf("coverage at 9 m = %v%%, want 100", cov)
	}
}

func TestAblationQCIPriority(t *testing.T) {
	r, err := Run("ablation-qci", Options{})
	if err != nil {
		t.Fatal(err)
	}
	q5 := cell(t, r, 0, 0, 1)
	q9 := cell(t, r, 0, 2, 1)
	if q5 >= q9/2 {
		t.Errorf("QCI 5 median %v not well below QCI 9 %v under load", q5, q9)
	}
	if q5 > 20 {
		t.Errorf("QCI 5 median %v ms should stay near the unloaded RTT", q5)
	}
}

func TestAblationSolver(t *testing.T) {
	r, err := Run("ablation-solver", Options{})
	if err != nil {
		t.Fatal(err)
	}
	gn := cell(t, r, 0, 0, 1)
	weighted := cell(t, r, 0, 1, 1)
	lin := cell(t, r, 0, 2, 1)
	if gn > lin*1.05 {
		t.Errorf("Gauss-Newton (%v) worse than linear (%v)", gn, lin)
	}
	if weighted > gn*1.05 {
		t.Errorf("weighted solver (%v) worse than unweighted (%v)", weighted, gn)
	}
}

func TestAblationStagesMonotoneWork(t *testing.T) {
	r, err := Run("ablation-stages", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratioWork := cell(t, r, 0, 0, 3)
	symWork := cell(t, r, 0, 1, 3)
	if symWork <= ratioWork {
		t.Error("symmetry stage did not add work")
	}
	// Full pipeline keeps true positives high.
	tp := cell(t, r, 0, 2, 1)
	if tp < cell(t, r, 0, 2, 2) {
		t.Error("full pipeline: fewer true positives than false matches")
	}
}

func TestResultString(t *testing.T) {
	r, err := Run("3e", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "3e") || !strings.Contains(s, "1920x1080") {
		t.Errorf("render: %q", s)
	}
}

func TestAblationIndexShape(t *testing.T) {
	r, err := Run("ablation-index", Options{})
	if err != nil {
		t.Fatal(err)
	}
	brute := cell(t, r, 0, 0, 2)
	geoPruned := cell(t, r, 0, 1, 2)
	lsh5 := cell(t, r, 0, 2, 2)
	if !(lsh5 < geoPruned && geoPruned < brute) {
		t.Errorf("work ordering: lsh5=%v geo=%v brute=%v", lsh5, geoPruned, brute)
	}
	// Recall stays high for every strategy on clean frames.
	for row := 0; row < 3; row++ {
		if rec := cell(t, r, 0, row, 1); rec < 80 {
			t.Errorf("row %d recall = %v%%", row, rec)
		}
	}
}
