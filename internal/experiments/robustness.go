package experiments

import (
	"fmt"
	"time"

	"acacia/internal/core"
	"acacia/internal/stats"
)

func init() {
	register(controlLoss())
}

// controlLoss exercises the control-plane transport's loss tolerance: one
// trial per injected S11 drop rate, each running an attach plus the
// network-initiated dedicated-bearer activation (the ACACIA redirection
// procedure) over the degraded link. The table shows how the transaction
// layer's retransmission/timeout machinery absorbs — or, past the retry
// budget, surfaces — control-plane loss; `-metrics` carries the epc/txn/*
// counters of every trial.
func controlLoss() Experiment {
	lossRates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	return Experiment{
		ID:    "control-loss",
		Title: "Bearer signalling under control-plane loss (transport robustness)",
		Trials: func(opts Options) []Trial {
			trials := make([]Trial, 0, len(lossRates))
			for _, p := range lossRates {
				p := p
				trials = append(trials, Trial{
					Key: fmt.Sprintf("loss=%g", p),
					Run: func(seed uint64) any { return runControlLossTrial(seed, p) },
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Attach + dedicated bearer over a lossy S11 control link",
				"S11 loss", "attach", "bearer", "retrans", "timeouts", "dups", "mean txn RTT (ms)")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "control-loss", Title: Title("control-loss"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"T3=100ms/N3=3 (GTPv2 retransmission analog): moderate loss costs retransmissions, not procedures",
					"procedures that exhaust the retry budget fail terminally with state rolled back — no hangs",
				}}
		},
	}
}

// runControlLossTrial runs one attach + dedicated-bearer activation with the
// given drop probability on the S11 (MME<->SGW-C) control link and returns
// the metered table row.
func runControlLossTrial(seed uint64, loss float64) Metered {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
	})
	tb.EPC.S11Link().SetLoss(loss)

	attachOK := "ok"
	if err := tb.Attach(tb.UEs[0]); err != nil {
		attachOK = "FAILED"
	}

	bearerOK := "-"
	if attachOK == "ok" {
		done := false
		var berr error
		tb.EPC.PCRF.RequestDedicatedBearer(core.RetailPolicyID,
			tb.UEs[0].UE.Addr(), tb.CIServer.Node.Addr(),
			"edge-sgw", "edge-pgw", func(_ uint8, err error) { done, berr = true, err })
		tb.Run(5 * time.Second)
		switch {
		case !done:
			bearerOK = "HUNG"
		case berr != nil:
			bearerOK = "FAILED"
		default:
			bearerOK = "ok"
		}
	}

	tr := tb.EPC.Transport()
	snap := tb.Eng.Metrics().Snapshot()
	meanRTT := 0.0
	if m, ok := snap.Get("epc/txn/latency-ms"); ok && m.Count > 0 {
		meanRTT = m.Value / float64(m.Count)
	}
	row := []any{fmt.Sprintf("%g%%", loss*100), attachOK, bearerOK,
		tr.Retransmissions(), tr.Timeouts(), tr.Duplicates(), meanRTT}
	return metered(row, tb.Eng)
}
