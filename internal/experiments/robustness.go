package experiments

import (
	"fmt"
	"time"

	"acacia/internal/core"
	"acacia/internal/fault"
	"acacia/internal/stats"
)

func init() {
	register(controlLoss())
	register(robustFailover())
}

// controlLoss exercises the control-plane transport's loss tolerance: one
// trial per injected S11 drop rate, each running an attach plus the
// network-initiated dedicated-bearer activation (the ACACIA redirection
// procedure) over the degraded link. The table shows how the transaction
// layer's retransmission/timeout machinery absorbs — or, past the retry
// budget, surfaces — control-plane loss; `-metrics` carries the epc/txn/*
// counters of every trial.
func controlLoss() Experiment {
	lossRates := []float64{0, 0.05, 0.1, 0.2, 0.3}
	return Experiment{
		ID:    "control-loss",
		Title: "Bearer signalling under control-plane loss (transport robustness)",
		Trials: func(opts Options) []Trial {
			trials := make([]Trial, 0, len(lossRates))
			for _, p := range lossRates {
				p := p
				trials = append(trials, Trial{
					Key: fmt.Sprintf("loss=%g", p),
					Run: func(seed uint64) any { return runControlLossTrial(seed, p) },
				})
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Attach + dedicated bearer over a lossy S11 control link",
				"S11 loss", "attach", "bearer", "retrans", "timeouts", "dups", "mean txn RTT (ms)")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "control-loss", Title: Title("control-loss"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"T3=100ms/N3=3 (GTPv2 retransmission analog): moderate loss costs retransmissions, not procedures",
					"procedures that exhaust the retry budget fail terminally with state rolled back — no hangs",
				}}
		},
	}
}

// failoverPoint is one cell of the robust-failover sweep.
type failoverPoint struct {
	failAt    time.Duration
	period    time.Duration
	maxMisses int
}

// robustFailover kills the serving edge site mid-AR-session across a sweep
// of failure timing × path-supervision period × miss budget, and reports
// the recovery pipeline's figures of merit: time-to-detect (GTP-U echo
// supervision), time-to-repair (bearer re-establishment on the surviving
// site), end-to-end session downtime as the AR front-end experiences it,
// and frames lost to the outage. Each trial also feeds the per-trial
// histograms under core/failover/ (rendered by -metrics).
func robustFailover() Experiment {
	return Experiment{
		ID:    "robust-failover",
		Title: "MEC failover: edge-site crash detection and session recovery",
		Trials: func(opts Options) []Trial {
			failAts := []time.Duration{time.Second, 3 * time.Second}
			sups := []failoverPoint{
				{period: 100 * time.Millisecond, maxMisses: 2},
				{period: 250 * time.Millisecond, maxMisses: 3},
			}
			if opts.Full {
				failAts = []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
				sups = []failoverPoint{
					{period: 50 * time.Millisecond, maxMisses: 2},
					{period: 100 * time.Millisecond, maxMisses: 2},
					{period: 100 * time.Millisecond, maxMisses: 3},
					{period: 250 * time.Millisecond, maxMisses: 3},
				}
			}
			var trials []Trial
			for _, failAt := range failAts {
				for _, s := range sups {
					pt := failoverPoint{failAt: failAt, period: s.period, maxMisses: s.maxMisses}
					trials = append(trials, Trial{
						Key: fmt.Sprintf("fail=%v period=%v misses=%d", pt.failAt, pt.period, pt.maxMisses),
						Run: func(seed uint64) any { return runFailoverTrial(seed, pt) },
					})
				}
			}
			return trials
		},
		Assemble: func(_ Options, parts []any) *Result {
			tbl := stats.NewTable("Edge-site crash mid-session: detection and recovery",
				"fail at", "probe period", "misses", "detect (ms)", "repair (ms)", "downtime (ms)", "frames lost", "recovered")
			for _, p := range parts {
				tbl.AddRow(p.([]any)...)
			}
			return &Result{ID: "robust-failover", Title: Title("robust-failover"), Tables: []*stats.Table{tbl},
				Notes: []string{
					"detect ≈ maxMisses×period (GTP-U echo supervision at the site SGW-U); repair is pure control-plane signalling",
					"session downtime is bounded by detect + repair + the front-end's in-flight frame timeout",
				}}
		},
	}
}

// runFailoverTrial crashes edge-1 at the configured time and measures the
// recovery pipeline onto edge-2.
func runFailoverTrial(seed uint64, pt failoverPoint) Metered {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
	})
	tb.AddEdgeSite("edge-2")
	tb.EnableFailover(pt.period, pt.maxMisses)

	// Register the result histograms up front so the snapshot layout does
	// not depend on which trial observes first after merging.
	scope := tb.Eng.Metrics().Scope("core").Scope("failover")
	hDetect := scope.Histogram("detect-ms")
	hRepair := scope.Histogram("repair-ms")
	hDowntime := scope.Histogram("downtime-ms")
	hLost := scope.Histogram("frames-lost")

	b := tb.UEs[0]
	row := func(vals ...any) Metered {
		base := []any{fmt.Sprintf("%v", pt.failAt), fmt.Sprintf("%v", pt.period), pt.maxMisses}
		return metered(append(base, vals...), tb.Eng)
	}
	if err := tb.Attach(b); err != nil {
		return row("-", "-", "-", "-", "ATTACH FAILED")
	}
	if err := tb.StartRetailApp(b, "electronics"); err != nil {
		return row("-", "-", "-", "-", "REGISTER FAILED")
	}
	tb.Run(5 * time.Second) // discovery, MRS round trip, session warm-up

	var respTimes []time.Duration
	b.Frontend.OnResponse = func(core.ARFrameResult) {
		respTimes = append(respTimes, time.Duration(tb.Eng.Now()))
	}
	failWall := time.Duration(tb.Eng.Now()) + pt.failAt
	if err := tb.Faults.Apply(fault.Plan{Name: "site-crash", Events: []fault.Event{
		{Kind: fault.SiteCrash, Target: "edge-1", At: pt.failAt},
	}}); err != nil {
		return row("-", "-", "-", "-", "PLAN REJECTED")
	}
	lostBefore := b.Frontend.Timeouts
	tb.Run(pt.failAt + 15*time.Second)

	var detectAt, repairAt time.Duration
	for _, ev := range tb.Eng.Metrics().Events() {
		if ev.Scope != "core/mrs" {
			continue
		}
		switch ev.Name {
		case "site-down":
			if detectAt == 0 {
				detectAt = ev.At
			}
		case "failover-done":
			if repairAt == 0 {
				repairAt = ev.At
			}
		}
	}
	if detectAt == 0 || repairAt == 0 || !b.DM.Connected(core.RetailServiceName) {
		return row("-", "-", "-", "-", "NOT RECOVERED")
	}
	var lastBefore, firstAfter time.Duration
	for _, at := range respTimes {
		if at < failWall {
			lastBefore = at
		} else if firstAfter == 0 {
			firstAfter = at
		}
	}
	downtime := firstAfter - lastBefore
	lost := b.Frontend.Timeouts - lostBefore

	detectMS := float64(detectAt-failWall) / float64(time.Millisecond)
	repairMS := float64(repairAt-detectAt) / float64(time.Millisecond)
	downtimeMS := float64(downtime) / float64(time.Millisecond)
	hDetect.Observe(detectMS)
	hRepair.Observe(repairMS)
	hDowntime.Observe(downtimeMS)
	hLost.Observe(float64(lost))
	return row(fmt.Sprintf("%.1f", detectMS), fmt.Sprintf("%.1f", repairMS),
		fmt.Sprintf("%.1f", downtimeMS), lost, "ok")
}

// runControlLossTrial runs one attach + dedicated-bearer activation with the
// given drop probability on the S11 (MME<->SGW-C) control link and returns
// the metered table row.
func runControlLossTrial(seed uint64, loss float64) Metered {
	tb := core.NewTestbed(core.TestbedConfig{
		Seed:        seed,
		IdleTimeout: time.Hour,
	})
	tb.EPC.S11Link().SetLoss(loss)

	attachOK := "ok"
	if err := tb.Attach(tb.UEs[0]); err != nil {
		attachOK = "FAILED"
	}

	bearerOK := "-"
	if attachOK == "ok" {
		done := false
		var berr error
		tb.EPC.PCRF.RequestDedicatedBearer(core.RetailPolicyID,
			tb.UEs[0].UE.Addr(), tb.CIServer.Node.Addr(),
			"edge-sgw", "edge-pgw", func(_ uint8, err error) { done, berr = true, err })
		tb.Run(5 * time.Second)
		switch {
		case !done:
			bearerOK = "HUNG"
		case berr != nil:
			bearerOK = "FAILED"
		default:
			bearerOK = "ok"
		}
	}

	tr := tb.EPC.Transport()
	snap := tb.Eng.Metrics().Snapshot()
	meanRTT := 0.0
	if m, ok := snap.Get("epc/txn/latency-ms"); ok && m.Count > 0 {
		meanRTT = m.Value / float64(m.Count)
	}
	row := []any{fmt.Sprintf("%g%%", loss*100), attachOK, bearerOK,
		tr.Retransmissions(), tr.Timeouts(), tr.Duplicates(), meanRTT}
	return metered(row, tb.Eng)
}
