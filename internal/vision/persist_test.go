package vision

import (
	"testing"

	"acacia/internal/geo"
	"acacia/internal/sim"
)

func TestYAMLRoundTrip(t *testing.T) {
	floor := geo.RetailFloor()
	// Small feature sets keep the document manageable in a unit test.
	db := BuildRetailDB(floor, 8)
	data := db.MarshalYAML()
	got, err := UnmarshalYAML(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("objects = %d, want %d", got.Len(), db.Len())
	}
	for i, o := range db.Objects {
		g := got.Objects[i]
		if g.Name != o.Name || g.Tag != o.Tag || g.Section != o.Section || g.Subsection != o.Subsection {
			t.Fatalf("object %d metadata mismatch: %+v vs %+v", i, g, o)
		}
		if g.Pos.Dist(o.Pos) > 1e-9 {
			t.Fatalf("object %d pos %v vs %v", i, g.Pos, o.Pos)
		}
		if g.Features.Len() != o.Features.Len() {
			t.Fatalf("object %d feature count", i)
		}
		for j := range o.Features.Descriptors {
			if g.Features.Keypoints[j] != o.Features.Keypoints[j] {
				t.Fatalf("object %d keypoint %d", i, j)
			}
			if g.Features.Descriptors[j] != o.Features.Descriptors[j] {
				t.Fatalf("object %d descriptor %d", i, j)
			}
		}
	}
}

func TestYAMLLoadedDBIsSearchable(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 64)
	loaded, err := UnmarshalYAML(db.MarshalYAML())
	if err != nil {
		t.Fatal(err)
	}
	target := loaded.Objects[33]
	frame := GenerateFrame(target.Features, DefaultFrameParams(100), sim.NewRNG(20))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(21))
	res := loaded.Search(frame, []int{target.Subsection}, m)
	if res.Best != target {
		t.Errorf("search over loaded DB returned %v", res.Best)
	}
}

func TestUnmarshalYAMLErrors(t *testing.T) {
	cases := []string{
		"format: something-else\nobjects: []\n",
		"format: acacia-ar-db\nversion: 1\n", // no objects
		"not yaml at all",
	}
	for _, c := range cases {
		if _, err := UnmarshalYAML([]byte(c)); err == nil {
			t.Errorf("UnmarshalYAML(%q) succeeded", c)
		}
	}
}

func TestUnmarshalYAMLRejectsCorruptObject(t *testing.T) {
	floor := geo.RetailFloor()
	db := NewDB()
	db.Add(&Object{
		Name: "x", Tag: "t", Section: "food", Subsection: 0,
		Pos:      floor.Subsections[0].Bounds.Center(),
		Features: GenerateObjectFeatures(1, 4),
	})
	data := db.MarshalYAML()
	// Truncate descriptors by dropping the last line block: corrupt the
	// descriptor/keypoint correspondence by removing one descriptor row.
	doc := string(data)
	idx := lastIndex(doc, "      - [")
	if idx < 0 {
		t.Fatalf("unexpected document layout:\n%s", doc)
	}
	end := idx
	for end < len(doc) && doc[end] != '\n' {
		end++
	}
	corrupted := doc[:idx] + doc[end+1:]
	if _, err := UnmarshalYAML([]byte(corrupted)); err == nil {
		t.Error("corrupt document accepted")
	}
}

func lastIndex(s, sub string) int {
	idx := -1
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			idx = i
		}
	}
	return idx
}
