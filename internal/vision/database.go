package vision

import (
	"fmt"

	"acacia/internal/geo"
	"acacia/internal/media"
)

// Object is one entry of the AR database: an annotated, geo-tagged item in
// the store with its canonical feature set.
type Object struct {
	Name string
	// Tag is the annotation returned to the user on a match (price,
	// reviews link, etc. in the real application).
	Tag string
	// Section and Subsection geo-tag the object's location on the floor.
	Section    string
	Subsection int
	// Pos is the object's position, used to generate evaluation frames at
	// checkpoints.
	Pos geo.Point
	// Features is the canonical SURF feature set extracted at enrollment.
	Features *FeatureSet
}

// DB is the geo-tagged object database of the AR back-end. Objects are
// indexed by subsection so a location estimate prunes the search space.
type DB struct {
	Objects      []*Object
	bySubsection map[int][]*Object
}

// NewDB builds an empty database.
func NewDB() *DB {
	return &DB{bySubsection: make(map[int][]*Object)}
}

// Add inserts an object.
func (db *DB) Add(o *Object) {
	db.Objects = append(db.Objects, o)
	db.bySubsection[o.Subsection] = append(db.bySubsection[o.Subsection], o)
}

// Len reports the object count.
func (db *DB) Len() int { return len(db.Objects) }

// InSubsections returns the objects tagged with any of the given
// subsection IDs; a nil ids slice means the entire database.
func (db *DB) InSubsections(ids []int) []*Object {
	if ids == nil {
		return db.Objects
	}
	var out []*Object
	for _, id := range ids {
		out = append(out, db.bySubsection[id]...)
	}
	return out
}

// ObjectsPerRetailSubsection is the retail database density: 5 objects in
// each of the 21 subsections = 105 objects, the paper's database size.
const ObjectsPerRetailSubsection = 5

// BuildRetailDB populates the 105-object retail database over the floor's
// subsections, with featuresPerObject canonical features per object.
// Object feature sets derive deterministically from stable per-object
// seeds, so every run sees the same database.
func BuildRetailDB(floor *geo.Floor, featuresPerObject int) *DB {
	db := NewDB()
	for _, ss := range floor.Subsections {
		for k := 0; k < ObjectsPerRetailSubsection; k++ {
			seed := uint64(ss.ID)*1000 + uint64(k) + 0xACAC1A
			// Spread object positions inside the subsection.
			frac := (float64(k) + 0.5) / ObjectsPerRetailSubsection
			pos := ss.Bounds.Min.Lerp(ss.Bounds.Max, frac)
			db.Add(&Object{
				Name:       fmt.Sprintf("obj-%02d-%d", ss.ID, k),
				Tag:        fmt.Sprintf("%s item %d in cell %d", ss.Section, k, ss.ID),
				Section:    ss.Section,
				Subsection: ss.ID,
				Pos:        pos,
				Features:   GenerateObjectFeatures(seed, featuresPerObject),
			})
		}
	}
	return db
}

// BuildRetailDBFromImages populates the retail database by *enrolling real
// images*: each object's catalog photo is rendered (deterministically from
// its seed), run through the Harris/patch-descriptor detector, and stored.
// The pixel-level counterpart of BuildRetailDB, used to exercise the whole
// AR pipeline on actual image data. imgW/imgH are the catalog photo size.
func BuildRetailDBFromImages(floor *geo.Floor, imgW, imgH int, opts DetectOptions) *DB {
	db := NewDB()
	for _, ss := range floor.Subsections {
		for k := 0; k < ObjectsPerRetailSubsection; k++ {
			seed := uint64(ss.ID)*1000 + uint64(k) + 0xACAC1A
			photo := media.SyntheticFrame(imgW, imgH, seed)
			frac := (float64(k) + 0.5) / ObjectsPerRetailSubsection
			pos := ss.Bounds.Min.Lerp(ss.Bounds.Max, frac)
			db.Add(&Object{
				Name:       fmt.Sprintf("obj-%02d-%d", ss.ID, k),
				Tag:        fmt.Sprintf("%s item %d in cell %d", ss.Section, k, ss.ID),
				Section:    ss.Section,
				Subsection: ss.ID,
				Pos:        pos,
				Features:   EnrollFromImage(photo, opts),
			})
		}
	}
	return db
}

// ObjectPhoto renders the catalog image an object was enrolled from (same
// deterministic seed as BuildRetailDBFromImages).
func ObjectPhoto(subsection, k, imgW, imgH int) *media.Frame {
	seed := uint64(subsection)*1000 + uint64(k) + 0xACAC1A
	return media.SyntheticFrame(imgW, imgH, seed)
}

// SearchResult is the outcome of a database search.
type SearchResult struct {
	// Best is the matched object, or nil for no-match.
	Best *Object
	// BestInliers is the consensus size for Best.
	BestInliers int
	// Candidates is how many objects were compared.
	Candidates int
	// MACs is the total descriptor workload of the search, which the
	// compute device models convert into the runtime the paper measures.
	MACs float64
}

// Search matches the query frame against the objects in the given
// subsections (nil = whole database) and returns the best accepted match.
// All candidates are scanned; the best consensus wins, mirroring the AR
// back-end's exhaustive scoring within its (pruned) search space.
func (db *DB) Search(query *FeatureSet, subsections []int, m *Matcher) SearchResult {
	var res SearchResult
	for _, obj := range db.InSubsections(subsections) {
		res.Candidates++
		r := m.Match(query, obj.Features)
		res.MACs += r.MACs
		if r.Matched && r.Inliers > res.BestInliers {
			res.Best = obj
			res.BestInliers = r.Inliers
		}
	}
	return res
}
