package vision

import (
	"testing"

	"acacia/internal/geo"
	"acacia/internal/media"
	"acacia/internal/sim"
)

func TestDetectFeaturesFindsCorners(t *testing.T) {
	frame := media.SyntheticFrame(256, 192, 5)
	fs := DetectFeatures(frame, DetectOptions{})
	if fs.Len() < 20 {
		t.Fatalf("features = %d, want a healthy corner set", fs.Len())
	}
	if fs.Len() > 256 {
		t.Fatalf("features = %d exceeds cap", fs.Len())
	}
	for i, kp := range fs.Keypoints {
		if kp.X < 0 || kp.X >= 1 || kp.Y < 0 || kp.Y >= 1 {
			t.Fatalf("keypoint %d out of normalized bounds: %+v", i, kp)
		}
	}
	// Descriptors are unit-normalized.
	for i := range fs.Descriptors {
		var sum float64
		for _, v := range fs.Descriptors[i] {
			sum += float64(v) * float64(v)
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("descriptor %d norm² = %v", i, sum)
		}
	}
}

func TestDetectFeaturesDeterministic(t *testing.T) {
	frame := media.SyntheticFrame(256, 192, 5)
	a := DetectFeatures(frame, DetectOptions{})
	b := DetectFeatures(frame, DetectOptions{})
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Keypoints {
		if a.Keypoints[i] != b.Keypoints[i] || a.Descriptors[i] != b.Descriptors[i] {
			t.Fatal("detection not deterministic")
		}
	}
}

func TestDetectFlatImageHasNoCorners(t *testing.T) {
	flat := media.NewFrame(128, 128)
	for i := range flat.Pix {
		flat.Pix[i] = 128
	}
	fs := DetectFeatures(flat, DetectOptions{})
	if fs.Len() != 0 {
		t.Errorf("flat image produced %d corners", fs.Len())
	}
}

func TestDetectTinyImage(t *testing.T) {
	tiny := media.SyntheticFrame(16, 16, 1)
	if fs := DetectFeatures(tiny, DetectOptions{}); fs.Len() != 0 {
		t.Errorf("tiny image produced %d features", fs.Len())
	}
}

// TestRealImageMatchSurvivesCompression is the end-to-end pixel pipeline:
// enroll an object from a clean frame, photograph it through the lossy
// JPEG-style codec, and confirm the matcher still recognizes it — while a
// different scene does not match.
func TestRealImageMatchSurvivesCompression(t *testing.T) {
	clean := media.SyntheticFrame(320, 240, 11)
	enrolled := EnrollFromImage(clean, DetectOptions{})
	if enrolled.Len() < 30 {
		t.Fatalf("enrollment features = %d", enrolled.Len())
	}

	// The AR front-end compresses at JPEG-90 before upload.
	data, err := media.Compress(clean, 90)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := media.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	query := DetectFeatures(decoded, DetectOptions{})
	if query.Len() < 30 {
		t.Fatalf("query features = %d", query.Len())
	}

	m := NewMatcher(MatcherConfig{RANSACTol: 0.01}, sim.NewRNG(12))
	res := m.Match(query, enrolled)
	if !res.Matched {
		t.Fatalf("compressed frame did not match its enrollment (inliers=%d)", res.Inliers)
	}

	other := media.SyntheticFrame(320, 240, 999)
	otherFS := DetectFeatures(other, DetectOptions{})
	if res := m.Match(otherFS, enrolled); res.Matched {
		t.Errorf("different scene matched with %d inliers", res.Inliers)
	}
}

func TestRealImageMatchDegradesWithQuality(t *testing.T) {
	clean := media.SyntheticFrame(320, 240, 13)
	enrolled := EnrollFromImage(clean, DetectOptions{})
	m := NewMatcher(MatcherConfig{RANSACTol: 0.01}, sim.NewRNG(14))

	inliersAt := func(q int) int {
		data, err := media.Compress(clean, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := media.Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		return m.Match(DetectFeatures(dec, DetectOptions{}), enrolled).Inliers
	}
	hi := inliersAt(95)
	lo := inliersAt(15)
	if hi <= lo {
		t.Errorf("inliers at q95 (%d) not above q15 (%d)", hi, lo)
	}
	if hi < 10 {
		t.Errorf("high-quality inliers = %d, want strong consensus", hi)
	}
}

func TestImageEnrolledDBSearch(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDBFromImages(floor, 160, 120, DetectOptions{MaxFeatures: 96})
	if db.Len() != 105 {
		t.Fatalf("objects = %d", db.Len())
	}
	// Photograph object (cell 9, item 2) through the JPEG-90 codec and
	// search its cell.
	photo := ObjectPhoto(9, 2, 160, 120)
	data, err := media.Compress(photo, 90)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := media.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	query := DetectFeatures(dec, DetectOptions{MaxFeatures: 96})
	m := NewMatcher(MatcherConfig{RANSACTol: 0.01}, sim.NewRNG(77))
	res := db.Search(query, []int{9}, m)
	if res.Best == nil {
		t.Fatal("no match for photographed object")
	}
	if res.Best.Name != "obj-09-2" {
		t.Errorf("matched %s, want obj-09-2", res.Best.Name)
	}
}
