package vision

import (
	"sort"
	"testing"
	"testing/quick"

	"acacia/internal/geo"
	"acacia/internal/sim"
)

func TestDescriptorDistSq(t *testing.T) {
	var a, b Descriptor
	a[0], b[1] = 1, 1
	if d := a.DistSq(&a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := a.DistSq(&b); d != 2 {
		t.Errorf("orthogonal unit distance² = %v, want 2", d)
	}
}

func TestDescriptorNormalization(t *testing.T) {
	rng := sim.NewRNG(5)
	f := func(seed uint64) bool {
		d := randomDescriptor(sim.NewRNG(seed))
		var sum float64
		for _, v := range d {
			sum += float64(v) * float64(v)
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	_ = rng
}

func TestPerturbStaysClose(t *testing.T) {
	rng := sim.NewRNG(7)
	orig := randomDescriptor(rng)
	pert := perturb(&orig, 0.05, rng)
	other := randomDescriptor(rng)
	if orig.DistSq(&pert) >= orig.DistSq(&other) {
		t.Error("perturbed descriptor farther than a random one")
	}
}

func TestGenerateObjectFeaturesDeterministic(t *testing.T) {
	a := GenerateObjectFeatures(42, 100)
	b := GenerateObjectFeatures(42, 100)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("lengths %d/%d", a.Len(), b.Len())
	}
	for i := range a.Descriptors {
		if a.Descriptors[i] != b.Descriptors[i] || a.Keypoints[i] != b.Keypoints[i] {
			t.Fatal("same seed produced different features")
		}
	}
	c := GenerateObjectFeatures(43, 100)
	if a.Descriptors[0] == c.Descriptors[0] {
		t.Error("different seeds produced identical first descriptor")
	}
}

func TestGenerateFrameComposition(t *testing.T) {
	obj := GenerateObjectFeatures(1, 200)
	params := DefaultFrameParams(100)
	frame := GenerateFrame(obj, params, sim.NewRNG(2))
	if frame.Len() != 100 {
		t.Errorf("frame features = %d, want 100", frame.Len())
	}
	// Object fraction capped by object size.
	small := GenerateObjectFeatures(1, 10)
	frame2 := GenerateFrame(small, params, sim.NewRNG(2))
	if frame2.Len() != 100 {
		t.Errorf("capped frame features = %d, want 100 (more clutter)", frame2.Len())
	}
}

func TestMatcherFindsObjectInFrame(t *testing.T) {
	obj := GenerateObjectFeatures(11, 150)
	frame := GenerateFrame(obj, DefaultFrameParams(120), sim.NewRNG(3))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(4))
	res := m.Match(frame, obj)
	if !res.Matched {
		t.Fatalf("object not matched: inliers=%d", res.Inliers)
	}
	if res.Inliers < 8 {
		t.Errorf("inliers = %d", res.Inliers)
	}
	if res.MACs <= 0 {
		t.Error("no MACs accounted")
	}
}

func TestMatcherRejectsWrongObject(t *testing.T) {
	obj := GenerateObjectFeatures(11, 150)
	other := GenerateObjectFeatures(999, 150)
	frame := GenerateFrame(obj, DefaultFrameParams(120), sim.NewRNG(3))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(4))
	if res := m.Match(frame, other); res.Matched {
		t.Errorf("matched wrong object with %d inliers", res.Inliers)
	}
}

func TestMatcherRejectsClutter(t *testing.T) {
	obj := GenerateObjectFeatures(11, 150)
	clutter := GenerateClutterFrame(120, sim.NewRNG(5))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(4))
	if res := m.Match(clutter, obj); res.Matched {
		t.Errorf("matched clutter with %d inliers", res.Inliers)
	}
}

func TestMatcherEmptyInputs(t *testing.T) {
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(1))
	empty := &FeatureSet{}
	obj := GenerateObjectFeatures(1, 10)
	if res := m.Match(empty, obj); res.Matched || res.MACs != 0 {
		t.Error("empty query should not match")
	}
	if res := m.Match(obj, empty); res.Matched || res.MACs != 0 {
		t.Error("empty train should not match")
	}
}

func TestStageAblationRelaxesFiltering(t *testing.T) {
	// Without RANSAC, acceptance uses raw correspondence counts: the
	// pipeline should still find the true object, and the full pipeline
	// must never pass more correspondences than a prefix of it.
	obj := GenerateObjectFeatures(21, 150)
	frame := GenerateFrame(obj, DefaultFrameParams(120), sim.NewRNG(6))

	ratioOnly := NewMatcher(MatcherConfig{Stages: StageRatio}, sim.NewRNG(7)).Match(frame, obj)
	ratioSym := NewMatcher(MatcherConfig{Stages: StageRatio | StageSymmetry}, sim.NewRNG(7)).Match(frame, obj)
	full := NewMatcher(MatcherConfig{}, sim.NewRNG(7)).Match(frame, obj)

	if len(ratioSym.Correspondences) > len(ratioOnly.Correspondences) {
		t.Error("symmetry stage added correspondences")
	}
	if len(full.Correspondences) > len(ratioSym.Correspondences) {
		t.Error("RANSAC stage added correspondences")
	}
	if !full.Matched {
		t.Error("full pipeline missed the true object")
	}
	// Symmetry stage costs a reverse scan: more MACs than ratio alone.
	if ratioSym.MACs <= ratioOnly.MACs {
		t.Error("symmetry stage did not account its reverse scan")
	}
}

func TestRatioTestFiltersClutterMatches(t *testing.T) {
	// With the ratio stage disabled, every query feature yields a
	// candidate; with it enabled, clutter features are mostly dropped.
	obj := GenerateObjectFeatures(31, 150)
	frame := GenerateFrame(obj, DefaultFrameParams(120), sim.NewRNG(8))
	none := NewMatcher(MatcherConfig{Stages: StageRANSAC, MinInliers: 8}, sim.NewRNG(9)).Match(frame, obj)
	with := NewMatcher(MatcherConfig{Stages: StageRatio | StageRANSAC, MinInliers: 8}, sim.NewRNG(9)).Match(frame, obj)
	_ = none
	if !with.Matched {
		t.Error("ratio+RANSAC missed the true object")
	}
}

func TestBuildRetailDB(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 64)
	if db.Len() != 105 {
		t.Fatalf("objects = %d, want 105", db.Len())
	}
	perCell := map[int]int{}
	for _, o := range db.Objects {
		perCell[o.Subsection]++
		if o.Features.Len() != 64 {
			t.Fatalf("object %s has %d features", o.Name, o.Features.Len())
		}
		if floor.SectionAt(o.Pos) != o.Section {
			t.Errorf("object %s position/section mismatch", o.Name)
		}
	}
	if len(perCell) != 21 {
		t.Errorf("cells populated = %d, want 21", len(perCell))
	}
	cells := make([]int, 0, len(perCell))
	for cell := range perCell {
		cells = append(cells, cell)
	}
	sort.Ints(cells)
	for _, cell := range cells {
		if n := perCell[cell]; n != ObjectsPerRetailSubsection {
			t.Errorf("cell %d has %d objects", cell, n)
		}
	}
}

func TestDBInSubsections(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 32)
	if got := len(db.InSubsections(nil)); got != 105 {
		t.Errorf("nil = whole DB, got %d", got)
	}
	if got := len(db.InSubsections([]int{0, 1})); got != 10 {
		t.Errorf("two cells = %d objects, want 10", got)
	}
	if got := len(db.InSubsections([]int{})); got != 0 {
		t.Errorf("empty id list = %d objects, want 0", got)
	}
}

func TestSearchFindsCorrectObjectWithPruning(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 96)
	target := db.Objects[17]
	frame := GenerateFrame(target.Features, DefaultFrameParams(120), sim.NewRNG(10))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(11))

	// Pruned search restricted to the target's cell.
	pruned := db.Search(frame, []int{target.Subsection}, m)
	if pruned.Best != target {
		t.Fatalf("pruned search returned %v", pruned.Best)
	}
	if pruned.Candidates != ObjectsPerRetailSubsection {
		t.Errorf("pruned candidates = %d", pruned.Candidates)
	}

	// Full search also finds it, at much higher cost.
	full := db.Search(frame, nil, m)
	if full.Best != target {
		t.Fatalf("full search returned %v", full.Best)
	}
	if full.Candidates != 105 {
		t.Errorf("full candidates = %d", full.Candidates)
	}
	if full.MACs <= pruned.MACs*10 {
		t.Errorf("full search MACs %.3g should dwarf pruned %.3g", full.MACs, pruned.MACs)
	}
}

func TestSearchNoMatchWhenObjectOutsidePrunedSet(t *testing.T) {
	// The rxPower baseline's failure mode (C13 false negative): pruning to
	// the wrong cells misses the object entirely.
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 96)
	target := db.Objects[0] // subsection 0
	frame := GenerateFrame(target.Features, DefaultFrameParams(120), sim.NewRNG(12))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(13))
	res := db.Search(frame, []int{5, 6}, m)
	if res.Best == target {
		t.Error("found object outside searched cells")
	}
}

func TestSearchMACsScaleWithCandidates(t *testing.T) {
	floor := geo.RetailFloor()
	db := BuildRetailDB(floor, 64)
	frame := GenerateClutterFrame(100, sim.NewRNG(14))
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(15))
	one := db.Search(frame, []int{0}, m)
	four := db.Search(frame, []int{0, 1, 2, 3}, m)
	ratio := four.MACs / one.MACs
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("MAC ratio = %.2f, want ≈4", ratio)
	}
}
