package vision

import (
	"math"
	"sort"

	"acacia/internal/media"
)

// This file closes the loop between the media substrate and the matcher:
// DetectFeatures extracts a FeatureSet from an actual grayscale frame
// (Harris corner detection plus SURF-style gradient-histogram descriptors),
// so enrollment and query can run on real pixel data — including frames
// that have been through the lossy DCT codec.

// DetectOptions tunes the detector; zero values select defaults.
type DetectOptions struct {
	// MaxFeatures caps the keypoint count (default 256), keeping the
	// strongest corners.
	MaxFeatures int
	// HarrisK is the corner-response trace weight (default 0.05).
	HarrisK float64
	// MinResponse discards weak corners (default 1e6, scaled to 8-bit
	// gradients).
	MinResponse float64
}

func (o DetectOptions) withDefaults() DetectOptions {
	if o.MaxFeatures == 0 {
		o.MaxFeatures = 256
	}
	if o.HarrisK == 0 {
		o.HarrisK = 0.05
	}
	if o.MinResponse == 0 {
		o.MinResponse = 1e6
	}
	return o
}

// patchRadius is the descriptor support region half-size: descriptors use
// a 16x16 patch (4x4 cells of 4x4 pixels).
const patchRadius = 8

// DetectFeatures extracts corners and descriptors from a real frame.
func DetectFeatures(f *media.Frame, opts DetectOptions) *FeatureSet {
	opts = opts.withDefaults()
	w, h := f.W, f.H
	if w < 3*patchRadius || h < 3*patchRadius {
		return &FeatureSet{}
	}

	// Sobel gradients.
	ix := make([]float64, w*h)
	iy := make([]float64, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			gx := float64(f.At(x+1, y-1)) + 2*float64(f.At(x+1, y)) + float64(f.At(x+1, y+1)) -
				float64(f.At(x-1, y-1)) - 2*float64(f.At(x-1, y)) - float64(f.At(x-1, y+1))
			gy := float64(f.At(x-1, y+1)) + 2*float64(f.At(x, y+1)) + float64(f.At(x+1, y+1)) -
				float64(f.At(x-1, y-1)) - 2*float64(f.At(x, y-1)) - float64(f.At(x+1, y-1))
			ix[y*w+x] = gx
			iy[y*w+x] = gy
		}
	}

	// Harris response over a 3x3 structure-tensor window.
	resp := make([]float64, w*h)
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			var sxx, syy, sxy float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					gx := ix[(y+dy)*w+x+dx]
					gy := iy[(y+dy)*w+x+dx]
					sxx += gx * gx
					syy += gy * gy
					sxy += gx * gy
				}
			}
			det := sxx*syy - sxy*sxy
			tr := sxx + syy
			resp[y*w+x] = det - opts.HarrisK*tr*tr
		}
	}

	// Non-maximum suppression over 5x5 neighbourhoods, margin-aware so the
	// descriptor patch stays inside the frame.
	type corner struct {
		x, y int
		r    float64
	}
	var corners []corner
	for y := patchRadius; y < h-patchRadius; y++ {
		for x := patchRadius; x < w-patchRadius; x++ {
			r := resp[y*w+x]
			if r < opts.MinResponse {
				continue
			}
			isMax := true
		nms:
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					if resp[(y+dy)*w+x+dx] > r {
						isMax = false
						break nms
					}
				}
			}
			if isMax {
				corners = append(corners, corner{x, y, r})
			}
		}
	}
	sort.Slice(corners, func(i, j int) bool {
		if corners[i].r != corners[j].r {
			return corners[i].r > corners[j].r
		}
		// Deterministic tie-break.
		if corners[i].y != corners[j].y {
			return corners[i].y < corners[j].y
		}
		return corners[i].x < corners[j].x
	})
	if len(corners) > opts.MaxFeatures {
		corners = corners[:opts.MaxFeatures]
	}

	fs := &FeatureSet{
		Keypoints:   make([]Keypoint, 0, len(corners)),
		Descriptors: make([]Descriptor, 0, len(corners)),
	}
	for _, c := range corners {
		fs.Keypoints = append(fs.Keypoints, Keypoint{
			X: float32(c.x) / float32(w),
			Y: float32(c.y) / float32(h),
		})
		fs.Descriptors = append(fs.Descriptors, patchDescriptor(ix, iy, w, c.x, c.y))
	}
	return fs
}

// patchDescriptor builds a 64-dim descriptor from the 16x16 patch around
// (cx, cy): a 4x4 grid of cells, each contributing a 4-bin gradient
// orientation histogram weighted by magnitude — the SURF/SIFT shape at
// reduced size.
func patchDescriptor(ix, iy []float64, w, cx, cy int) Descriptor {
	var d Descriptor
	for py := 0; py < 16; py++ {
		for px := 0; px < 16; px++ {
			x := cx - patchRadius + px
			y := cy - patchRadius + py
			gx := ix[y*w+x]
			gy := iy[y*w+x]
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			// Orientation bin in [0,4): quadrant of atan2.
			ang := math.Atan2(gy, gx) // [-pi, pi]
			bin := int((ang + math.Pi) / (math.Pi / 2))
			if bin > 3 {
				bin = 3
			}
			cell := (py/4)*4 + px/4 // 0..15
			d[cell*4+bin] += float32(mag)
		}
	}
	d.normalize()
	return d
}

// EnrollFromImage extracts an object's canonical features from a real
// image, the pixel-level counterpart of GenerateObjectFeatures.
func EnrollFromImage(f *media.Frame, opts DetectOptions) *FeatureSet {
	return DetectFeatures(f, opts)
}
