package vision

import (
	"math"

	"acacia/internal/sim"
)

// MatcherConfig tunes the four-stage matching pipeline. Zero values select
// the defaults the AR back-end uses.
type MatcherConfig struct {
	// RatioThreshold is Lowe's 2-NN ratio test bound (default 0.75): the
	// best match must be this much closer than the second best.
	RatioThreshold float64
	// MinInliers is the RANSAC consensus needed to declare an object match
	// (default 8).
	MinInliers int
	// RANSACIters bounds model hypotheses per candidate (default 64).
	RANSACIters int
	// RANSACTol is the keypoint reprojection tolerance in normalized image
	// units (default 0.02).
	RANSACTol float64
	// Stages masks pipeline stages for the ablation study; the default
	// (StageAll) runs everything.
	Stages Stage
}

// Stage is a bitmask of pipeline stages.
type Stage uint8

// Pipeline stages, in execution order.
const (
	StageRatio Stage = 1 << iota
	StageSymmetry
	StageRANSAC

	StageAll = StageRatio | StageSymmetry | StageRANSAC
)

func (c MatcherConfig) withDefaults() MatcherConfig {
	if c.RatioThreshold == 0 {
		c.RatioThreshold = 0.75
	}
	if c.MinInliers == 0 {
		c.MinInliers = 8
	}
	if c.RANSACIters == 0 {
		c.RANSACIters = 64
	}
	if c.RANSACTol == 0 {
		c.RANSACTol = 0.02
	}
	if c.Stages == 0 {
		c.Stages = StageAll
	}
	return c
}

// Correspondence is one accepted descriptor match between query feature Q
// and train (database) feature T.
type Correspondence struct {
	Q, T int
}

// MatchResult is the outcome of matching a query frame against one
// database object.
type MatchResult struct {
	// Matched reports whether the pipeline accepted the object.
	Matched bool
	// Inliers is the RANSAC consensus size (0 when rejected earlier).
	Inliers int
	// Correspondences are the matches surviving every enabled stage.
	Correspondences []Correspondence
	// MACs counts descriptor multiply-accumulate operations performed, the
	// workload unit the compute device models convert to latency.
	MACs float64
}

// Matcher runs the brute-force matching pipeline.
type Matcher struct {
	cfg MatcherConfig
	rng *sim.RNG
}

// NewMatcher creates a matcher; rng drives RANSAC sampling and must be
// deterministic for reproducible runs.
func NewMatcher(cfg MatcherConfig, rng *sim.RNG) *Matcher {
	return &Matcher{cfg: cfg.withDefaults(), rng: rng}
}

// knn2 finds, for each query descriptor, the two nearest train descriptors,
// returning (best index, best distSq, second distSq) triples and the MAC
// count of the scan.
func knn2(q, t []Descriptor) (best []int, d1, d2 []float64, macs float64) {
	best = make([]int, len(q))
	d1 = make([]float64, len(q))
	d2 = make([]float64, len(q))
	for i := range q {
		b, b1, b2 := -1, math.Inf(1), math.Inf(1)
		for j := range t {
			d := q[i].DistSq(&t[j])
			if d < b1 {
				b, b2, b1 = j, b1, d
			} else if d < b2 {
				b2 = d
			}
		}
		best[i], d1[i], d2[i] = b, b1, b2
	}
	macs = float64(len(q)) * float64(len(t)) * DescriptorDim
	return best, d1, d2, macs
}

// Match runs the pipeline for a query frame against one object's features.
func (m *Matcher) Match(query, train *FeatureSet) MatchResult {
	var res MatchResult
	if query.Len() == 0 || train.Len() == 0 {
		return res
	}

	// Stage 1: forward 2-NN with ratio test.
	fwdBest, fd1, fd2, macs := knn2(query.Descriptors, train.Descriptors)
	res.MACs += macs
	ratio2 := m.cfg.RatioThreshold * m.cfg.RatioThreshold
	var cands []Correspondence
	for i, j := range fwdBest {
		if j < 0 {
			continue
		}
		if m.cfg.Stages&StageRatio != 0 {
			if fd2[i] == 0 || fd1[i]/fd2[i] > ratio2 {
				continue
			}
		}
		cands = append(cands, Correspondence{Q: i, T: j})
	}

	// Stage 2: symmetry (cross-check) — the reverse 2-NN of each candidate
	// train feature must point back at the query feature.
	if m.cfg.Stages&StageSymmetry != 0 && len(cands) > 0 {
		revBest, _, _, revMACs := knn2(train.Descriptors, query.Descriptors)
		res.MACs += revMACs
		sym := cands[:0]
		for _, c := range cands {
			if revBest[c.T] == c.Q {
				sym = append(sym, c)
			}
		}
		cands = sym
	}

	// Stage 3: RANSAC over a similarity model (scale + translation, the
	// transform our synthetic frames apply).
	if m.cfg.Stages&StageRANSAC != 0 {
		inliers, consensus := m.ransac(query, train, cands)
		// Model estimation cost is tiny next to the k-NN scans but not
		// free; count one descriptor-op per hypothesis-correspondence pair.
		res.MACs += float64(m.cfg.RANSACIters * len(cands))
		res.Inliers = consensus
		res.Correspondences = inliers
		res.Matched = consensus >= m.cfg.MinInliers
		return res
	}

	res.Correspondences = cands
	res.Inliers = len(cands)
	res.Matched = len(cands) >= m.cfg.MinInliers
	return res
}

// ransac estimates a scale+translation model from correspondence pairs and
// returns the best consensus set.
func (m *Matcher) ransac(query, train *FeatureSet, cands []Correspondence) ([]Correspondence, int) {
	if len(cands) < 2 {
		return nil, 0
	}
	tol2 := m.cfg.RANSACTol * m.cfg.RANSACTol
	bestCount := 0
	var bestInliers []Correspondence
	for iter := 0; iter < m.cfg.RANSACIters; iter++ {
		a := cands[m.rng.Intn(len(cands))]
		b := cands[m.rng.Intn(len(cands))]
		if a == b {
			continue
		}
		// Hypothesize: queryKP = trainKP*s + (tx, ty). Estimate s from the
		// pair's train-space vs query-space separation, then t from one
		// correspondence.
		tdx := float64(train.Keypoints[b.T].X - train.Keypoints[a.T].X)
		tdy := float64(train.Keypoints[b.T].Y - train.Keypoints[a.T].Y)
		qdx := float64(query.Keypoints[b.Q].X - query.Keypoints[a.Q].X)
		qdy := float64(query.Keypoints[b.Q].Y - query.Keypoints[a.Q].Y)
		tn := math.Hypot(tdx, tdy)
		if tn < 1e-6 {
			continue
		}
		s := math.Hypot(qdx, qdy) / tn
		if s < 0.1 || s > 10 {
			continue
		}
		tx := float64(query.Keypoints[a.Q].X) - float64(train.Keypoints[a.T].X)*s
		ty := float64(query.Keypoints[a.Q].Y) - float64(train.Keypoints[a.T].Y)*s
		var inliers []Correspondence
		for _, c := range cands {
			px := float64(train.Keypoints[c.T].X)*s + tx
			py := float64(train.Keypoints[c.T].Y)*s + ty
			dx := px - float64(query.Keypoints[c.Q].X)
			dy := py - float64(query.Keypoints[c.Q].Y)
			if dx*dx+dy*dy <= tol2 {
				inliers = append(inliers, c)
			}
		}
		if len(inliers) > bestCount {
			bestCount = len(inliers)
			bestInliers = inliers
		}
	}
	return bestInliers, bestCount
}
