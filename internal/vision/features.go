// Package vision implements the computer-vision substrate of the ACACIA AR
// application: SURF-style feature sets, a brute-force k-NN descriptor
// matcher with the paper's four-stage accuracy pipeline (2-NN ratio test,
// symmetry test, RANSAC geometric verification), and the geo-tagged object
// database the AR back-end searches.
//
// Features are synthetic but structurally faithful: every object has a
// deterministic set of keypoints with 64-dimensional unit descriptors, and a
// camera frame of an object contains a geometrically transformed, noise-
// perturbed subset of those features buried in background clutter. The
// matcher must therefore do the real algorithmic work — nearest-neighbour
// search, ratio/symmetry filtering and geometric consensus — to find the
// object, and its operation counts drive the calibrated latency models.
package vision

import (
	"math"

	"acacia/internal/sim"
)

// DescriptorDim is the SURF descriptor dimensionality (64, as in the
// paper's SURF configuration).
const DescriptorDim = 64

// Descriptor is a unit-normalized feature descriptor.
type Descriptor [DescriptorDim]float32

// DistSq reports the squared L2 distance between two descriptors.
func (d *Descriptor) DistSq(o *Descriptor) float64 {
	var sum float64
	for i := 0; i < DescriptorDim; i++ {
		diff := float64(d[i] - o[i])
		sum += diff * diff
	}
	return sum
}

// normalize scales the descriptor to unit length.
func (d *Descriptor) normalize() {
	var sum float64
	for _, v := range d {
		sum += float64(v) * float64(v)
	}
	n := math.Sqrt(sum)
	if n == 0 {
		d[0] = 1
		return
	}
	for i := range d {
		d[i] = float32(float64(d[i]) / n)
	}
}

// Keypoint is a feature location in normalized image coordinates [0,1)².
type Keypoint struct {
	X, Y float32
}

// FeatureSet is the SURF output for one image: parallel keypoint and
// descriptor slices.
type FeatureSet struct {
	Keypoints   []Keypoint
	Descriptors []Descriptor
}

// Len reports the feature count.
func (f *FeatureSet) Len() int { return len(f.Keypoints) }

// randomDescriptor draws a random unit descriptor.
func randomDescriptor(rng *sim.RNG) Descriptor {
	var d Descriptor
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	d.normalize()
	return d
}

// perturb returns a copy of d with Gaussian noise of the given sigma added
// to every component, renormalized. Small sigmas keep the perturbed
// descriptor closest to its origin among random alternatives, which is what
// makes the ratio test effective.
func perturb(d *Descriptor, sigma float64, rng *sim.RNG) Descriptor {
	var out Descriptor
	for i := range d {
		out[i] = d[i] + float32(rng.NormFloat64()*sigma)
	}
	out.normalize()
	return out
}

// GenerateObjectFeatures deterministically creates the canonical feature
// set of an object from its seed: n keypoints uniformly placed with random
// unit descriptors. The same seed always yields the same features, so the
// database is reproducible.
func GenerateObjectFeatures(seed uint64, n int) *FeatureSet {
	rng := sim.NewRNG(seed)
	fs := &FeatureSet{
		Keypoints:   make([]Keypoint, n),
		Descriptors: make([]Descriptor, n),
	}
	for i := 0; i < n; i++ {
		fs.Keypoints[i] = Keypoint{X: float32(rng.Float64()), Y: float32(rng.Float64())}
		fs.Descriptors[i] = randomDescriptor(rng)
	}
	return fs
}

// FrameParams controls synthetic camera-frame generation.
type FrameParams struct {
	// TotalFeatures is the frame's feature budget (resolution-dependent).
	TotalFeatures int
	// ObjectFraction is the share of frame features that come from the
	// photographed object (the rest is background clutter). Capped by the
	// object's own feature count.
	ObjectFraction float64
	// NoiseSigma perturbs object descriptors (viewing conditions).
	NoiseSigma float64
	// Scale and Tx/Ty place the object in the frame: frame keypoint =
	// object keypoint * Scale + (Tx, Ty).
	Scale, Tx, Ty float64
}

// DefaultFrameParams are the standard viewing conditions used by the
// experiments: 40% of frame features on the object, moderate descriptor
// noise, a slight zoom and offset.
func DefaultFrameParams(totalFeatures int) FrameParams {
	return FrameParams{
		TotalFeatures:  totalFeatures,
		ObjectFraction: 0.4,
		NoiseSigma:     0.05,
		Scale:          0.8,
		Tx:             0.1,
		Ty:             0.05,
	}
}

// GenerateFrame synthesizes the feature set of a camera frame showing the
// object, under params, using rng for noise and clutter. Object-derived
// features appear first in the returned set only by construction detail;
// callers must not rely on ordering.
func GenerateFrame(object *FeatureSet, params FrameParams, rng *sim.RNG) *FeatureSet {
	nObj := int(float64(params.TotalFeatures) * params.ObjectFraction)
	if nObj > object.Len() {
		nObj = object.Len()
	}
	nClutter := params.TotalFeatures - nObj
	fs := &FeatureSet{
		Keypoints:   make([]Keypoint, 0, params.TotalFeatures),
		Descriptors: make([]Descriptor, 0, params.TotalFeatures),
	}
	// A random subset of the object's features is visible in the frame.
	perm := rng.Perm(object.Len())
	for _, idx := range perm[:nObj] {
		kp := object.Keypoints[idx]
		fs.Keypoints = append(fs.Keypoints, Keypoint{
			X: float32(float64(kp.X)*params.Scale + params.Tx),
			Y: float32(float64(kp.Y)*params.Scale + params.Ty),
		})
		fs.Descriptors = append(fs.Descriptors, perturb(&object.Descriptors[idx], params.NoiseSigma, rng))
	}
	for i := 0; i < nClutter; i++ {
		fs.Keypoints = append(fs.Keypoints, Keypoint{X: float32(rng.Float64()), Y: float32(rng.Float64())})
		fs.Descriptors = append(fs.Descriptors, randomDescriptor(rng))
	}
	return fs
}

// GenerateClutterFrame synthesizes a frame containing no database object at
// all — the no-match case.
func GenerateClutterFrame(totalFeatures int, rng *sim.RNG) *FeatureSet {
	fs := &FeatureSet{
		Keypoints:   make([]Keypoint, totalFeatures),
		Descriptors: make([]Descriptor, totalFeatures),
	}
	for i := 0; i < totalFeatures; i++ {
		fs.Keypoints[i] = Keypoint{X: float32(rng.Float64()), Y: float32(rng.Float64())}
		fs.Descriptors[i] = randomDescriptor(rng)
	}
	return fs
}
