package vision

import (
	"fmt"

	"acacia/internal/geo"
	"acacia/internal/yamlite"
)

// MarshalYAML serializes the database in the YAML layout the AR back-end
// loads at startup, mirroring the paper's OpenCV YAML persistence: a list of
// objects, each with its name, annotation tag, geo-tags and feature data.
func (db *DB) MarshalYAML() []byte {
	objects := &yamlite.Node{Kind: yamlite.KindSeq}
	for _, o := range db.Objects {
		kps := make([]float64, 0, o.Features.Len()*2)
		for _, kp := range o.Features.Keypoints {
			kps = append(kps, float64(kp.X), float64(kp.Y))
		}
		descs := &yamlite.Node{Kind: yamlite.KindSeq}
		for i := range o.Features.Descriptors {
			d := &o.Features.Descriptors[i]
			vals := make([]float64, DescriptorDim)
			for j, v := range d {
				vals[j] = float64(v)
			}
			descs.Seq = append(descs.Seq, yamlite.FloatSeq(vals))
		}
		node := yamlite.Map().
			Set("name", yamlite.Str(o.Name)).
			Set("tag", yamlite.Str(o.Tag)).
			Set("section", yamlite.Str(o.Section)).
			Set("subsection", yamlite.Int(o.Subsection)).
			Set("pos", yamlite.FloatSeq([]float64{o.Pos.X, o.Pos.Y})).
			Set("keypoints", yamlite.FloatSeq(kps)).
			Set("descriptors", descs)
		objects.Seq = append(objects.Seq, node)
	}
	doc := yamlite.Map().
		Set("format", yamlite.Str("acacia-ar-db")).
		Set("version", yamlite.Int(1)).
		Set("objects", objects)
	return yamlite.Marshal(doc)
}

// UnmarshalYAML loads a database previously serialized with MarshalYAML.
func UnmarshalYAML(data []byte) (*DB, error) {
	doc, err := yamlite.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	if doc.Get("format").Text() != "acacia-ar-db" {
		return nil, fmt.Errorf("vision: unrecognized database format %q", doc.Get("format").Text())
	}
	objects := doc.Get("objects")
	if objects == nil || objects.Kind != yamlite.KindSeq {
		return nil, fmt.Errorf("vision: missing objects sequence")
	}
	db := NewDB()
	for i, node := range objects.Seq {
		o := &Object{
			Name:    node.Get("name").Text(),
			Tag:     node.Get("tag").Text(),
			Section: node.Get("section").Text(),
		}
		if o.Subsection, err = node.Get("subsection").Int(); err != nil {
			return nil, fmt.Errorf("vision: object %d subsection: %w", i, err)
		}
		pos, err := node.Get("pos").Floats()
		if err != nil || len(pos) != 2 {
			return nil, fmt.Errorf("vision: object %d pos malformed", i)
		}
		o.Pos = geo.Point{X: pos[0], Y: pos[1]}
		kps, err := node.Get("keypoints").Floats()
		if err != nil || len(kps)%2 != 0 {
			return nil, fmt.Errorf("vision: object %d keypoints malformed", i)
		}
		descs := node.Get("descriptors")
		if descs == nil || descs.Kind != yamlite.KindSeq || descs.Len() != len(kps)/2 {
			return nil, fmt.Errorf("vision: object %d descriptor/keypoint count mismatch", i)
		}
		fs := &FeatureSet{}
		for k := 0; k < len(kps); k += 2 {
			fs.Keypoints = append(fs.Keypoints, Keypoint{X: float32(kps[k]), Y: float32(kps[k+1])})
		}
		for j, dnode := range descs.Seq {
			vals, err := dnode.Floats()
			if err != nil || len(vals) != DescriptorDim {
				return nil, fmt.Errorf("vision: object %d descriptor %d malformed", i, j)
			}
			var d Descriptor
			for k, v := range vals {
				d[k] = float32(v)
			}
			fs.Descriptors = append(fs.Descriptors, d)
		}
		o.Features = fs
		db.Add(o)
	}
	return db, nil
}
