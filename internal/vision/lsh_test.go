package vision

import (
	"testing"

	"acacia/internal/geo"
	"acacia/internal/sim"
)

func buildIndexedDB(t *testing.T) (*DB, *Index) {
	t.Helper()
	db := BuildRetailDB(geo.RetailFloor(), 64)
	ix := BuildIndex(db, IndexConfig{}, sim.NewRNG(41))
	return db, ix
}

func TestLSHFindsTrueObjectInTopCandidates(t *testing.T) {
	db, ix := buildIndexedDB(t)
	hits := 0
	const trials = 15
	for i := 0; i < trials; i++ {
		target := db.Objects[(i*13)%db.Len()]
		frame := GenerateFrame(target.Features, DefaultFrameParams(96), sim.NewRNG(uint64(100+i)))
		cands, _ := ix.CandidateObjects(frame, 5)
		for _, c := range cands {
			if c == target {
				hits++
				break
			}
		}
	}
	if hits < trials*8/10 {
		t.Errorf("LSH top-5 recall = %d/%d, want >= 80%%", hits, trials)
	}
}

func TestSearchWithIndexMatchesAndSavesWork(t *testing.T) {
	db, ix := buildIndexedDB(t)
	m := NewMatcher(MatcherConfig{}, sim.NewRNG(43))
	target := db.Objects[37]
	frame := GenerateFrame(target.Features, DefaultFrameParams(96), sim.NewRNG(200))

	full := db.Search(frame, nil, m)
	indexed := db.SearchWithIndex(frame, ix, 5, m)

	if full.Best != target {
		t.Fatalf("brute force missed the target")
	}
	if indexed.Best != target {
		t.Fatalf("indexed search missed the target (candidates=%d)", indexed.Candidates)
	}
	if indexed.MACs >= full.MACs/3 {
		t.Errorf("indexed MACs %.3g not well below brute force %.3g", indexed.MACs, full.MACs)
	}
	if indexed.Candidates > 5 {
		t.Errorf("candidates = %d, want <= topM", indexed.Candidates)
	}
}

func TestLSHDeterministicForSeed(t *testing.T) {
	db := BuildRetailDB(geo.RetailFloor(), 32)
	a := BuildIndex(db, IndexConfig{}, sim.NewRNG(7))
	b := BuildIndex(db, IndexConfig{}, sim.NewRNG(7))
	frame := GenerateFrame(db.Objects[3].Features, DefaultFrameParams(64), sim.NewRNG(9))
	ca, _ := a.CandidateObjects(frame, 8)
	cb, _ := b.CandidateObjects(frame, 8)
	if len(ca) != len(cb) {
		t.Fatalf("candidate counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("same seed produced different candidate ordering")
		}
	}
}

func TestLSHConfigBounds(t *testing.T) {
	cfg := IndexConfig{Bits: 40, Tables: 0}.withDefaults()
	if cfg.Bits != 32 {
		t.Errorf("bits clamped to %d", cfg.Bits)
	}
	if cfg.Tables != 8 {
		t.Errorf("tables default = %d", cfg.Tables)
	}
}

func TestLSHTopMClampedToAvailable(t *testing.T) {
	db, ix := buildIndexedDB(t)
	frame := GenerateFrame(db.Objects[0].Features, DefaultFrameParams(64), sim.NewRNG(5))
	cands, _ := ix.CandidateObjects(frame, 10_000)
	if len(cands) > db.Len() {
		t.Errorf("candidates = %d beyond database size", len(cands))
	}
}
