package vision

import (
	"sort"

	"acacia/internal/sim"
)

// LSH prefiltering: an approximate-nearest-neighbour index over the whole
// database's descriptors. Random-hyperplane signatures bucket similar
// descriptors together; a query votes for the objects its descriptors
// collide with, and only the top-voted objects go through the full
// (expensive) matching pipeline. This is the classic way AR back-ends scale
// beyond what geo-pruning alone covers, and the ablation quantifies the
// work/recall trade against brute force.

// IndexConfig tunes the LSH index; zero values select defaults.
type IndexConfig struct {
	// Bits is the signature width per table (default 16, max 32).
	Bits int
	// Tables is the number of independent hash tables (default 8).
	Tables int
}

func (c IndexConfig) withDefaults() IndexConfig {
	if c.Bits == 0 {
		c.Bits = 16
	}
	if c.Bits > 32 {
		c.Bits = 32
	}
	if c.Tables == 0 {
		c.Tables = 8
	}
	return c
}

// Index is an LSH index over a database's descriptors.
type Index struct {
	cfg    IndexConfig
	db     *DB
	planes [][]Descriptor       // [table][bit] hyperplane normals
	tables []map[uint32][]int32 // signature -> object indices (deduplicated per bucket)
}

// BuildIndex hashes every descriptor of every object in db. The rng seeds
// the hyperplanes; the same seed reproduces the same index.
func BuildIndex(db *DB, cfg IndexConfig, rng *sim.RNG) *Index {
	cfg = cfg.withDefaults()
	ix := &Index{cfg: cfg, db: db}
	ix.planes = make([][]Descriptor, cfg.Tables)
	ix.tables = make([]map[uint32][]int32, cfg.Tables)
	for t := 0; t < cfg.Tables; t++ {
		ix.planes[t] = make([]Descriptor, cfg.Bits)
		for b := 0; b < cfg.Bits; b++ {
			ix.planes[t][b] = randomDescriptor(rng)
		}
		ix.tables[t] = make(map[uint32][]int32)
	}
	for objIdx, obj := range db.Objects {
		for d := range obj.Features.Descriptors {
			desc := &obj.Features.Descriptors[d]
			for t := 0; t < cfg.Tables; t++ {
				sig := ix.signature(t, desc)
				bucket := ix.tables[t][sig]
				// Deduplicate consecutive inserts of the same object.
				if n := len(bucket); n == 0 || bucket[n-1] != int32(objIdx) {
					ix.tables[t][sig] = append(bucket, int32(objIdx))
				}
			}
		}
	}
	return ix
}

// signature computes the table's bit signature for a descriptor.
func (ix *Index) signature(table int, d *Descriptor) uint32 {
	var sig uint32
	for b, plane := range ix.planes[table] {
		var dot float64
		for i := 0; i < DescriptorDim; i++ {
			dot += float64(d[i]) * float64(plane[i])
		}
		if dot >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// hashMACs is the descriptor work of hashing one descriptor across all
// tables (Bits*Tables dot products of DescriptorDim each).
func (ix *Index) hashMACs() float64 {
	return float64(ix.cfg.Bits*ix.cfg.Tables) * DescriptorDim
}

// CandidateObjects votes for the objects most similar to the query frame
// and returns the topM, plus the hashing workload in MACs.
func (ix *Index) CandidateObjects(query *FeatureSet, topM int) ([]*Object, float64) {
	votes := make(map[int32]int)
	for d := range query.Descriptors {
		desc := &query.Descriptors[d]
		for t := 0; t < ix.cfg.Tables; t++ {
			sig := ix.signature(t, desc)
			for _, objIdx := range ix.tables[t][sig] {
				votes[objIdx]++
			}
		}
	}
	type scored struct {
		idx   int32
		votes int
	}
	all := make([]scored, 0, len(votes))
	for idx, v := range votes {
		all = append(all, scored{idx, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].votes != all[j].votes {
			return all[i].votes > all[j].votes
		}
		return all[i].idx < all[j].idx
	})
	if topM > len(all) {
		topM = len(all)
	}
	out := make([]*Object, 0, topM)
	for _, s := range all[:topM] {
		out = append(out, ix.db.Objects[s.idx])
	}
	return out, float64(query.Len()) * ix.hashMACs()
}

// SearchWithIndex prefilters the database with the LSH index, then runs the
// full matching pipeline over only the topM voted objects.
func (db *DB) SearchWithIndex(query *FeatureSet, ix *Index, topM int, m *Matcher) SearchResult {
	var res SearchResult
	cands, hashWork := ix.CandidateObjects(query, topM)
	res.MACs += hashWork
	for _, obj := range cands {
		res.Candidates++
		r := m.Match(query, obj.Features)
		res.MACs += r.MACs
		if r.Matched && r.Inliers > res.BestInliers {
			res.Best = obj
			res.BestInliers = r.Inliers
		}
	}
	return res
}
