// Package ctl is the control-plane transport of the testbed: it carries
// S1AP, GTPv2-C and OpenFlow exchanges as real packets over netsim links
// between control endpoints (eNB, MME, SGW-C/PGW-C, SDN controller), with a
// transaction layer on top — per-peer sequence allocation, a pending table
// keyed by (peer, seq), retransmission timers with a bounded retry budget
// (the GTPv2 T3/N3 timers; an SCTP-like reliable channel for S1AP), and
// duplicate suppression so re-delivered requests stay idempotent.
//
// Control-plane latency is therefore emergent — propagation plus queueing
// plus retransmission on the links the messages actually traverse — instead
// of a configured constant, and injected link loss exercises the recovery
// machinery end to end. A procedure that exhausts its retries fails loudly
// through its OnFail callback rather than hanging.
//
// Byte accounting note: callers account a message once when they first
// offer it to the transport (the §4 methodology counts protocol exchanges,
// not channel effects), so retransmissions and the small transport-level
// acks do not inflate the paper's message/byte tables. Ack frames still
// occupy link bandwidth like any other packet.
//
// Partitioning note (DESIGN.md §3g): an endpoint belongs to its node's
// partition engine — timers, counters and pools it touches are that
// partition's, held in a per-engine transport state. Control frames between
// endpoints in different partitions cross on the wire like any other
// packet (netsim's cross-partition delivery), so sender-side machinery runs
// in the sender's partition and the deliver continuation runs in the
// receiver's. Frames that cross partitions are not recycled into a foreign
// pool; they fall to the garbage collector instead.
package ctl

import (
	"fmt"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// Transport defaults: T3 is the retransmission timeout, N3 the retry budget
// (TS 29.274 §7.6 uses T3-RESPONSE/N3-REQUESTS; 3 s / 3 tries on real
// hardware — the testbed uses a shorter timer scaled to its link delays).
const (
	DefaultT3 = 100 * time.Millisecond
	DefaultN3 = 3
)

// AckBytes is the wire size of a transport-level ack frame (an SCTP SACK
// chunk / GTPv2 triggered response is this order of magnitude). Acks are
// not protocol messages and are deliberately absent from the §4 accounting.
const AckBytes = 28

// TxInfo reports how one transaction fared on the wire, observed at ack
// time: the link the (finally delivered) request traversed, the queueing
// delay it accumulated, how many retransmissions the exchange needed, and
// the request->ack round-trip time.
type TxInfo struct {
	Link      string
	QueueWait time.Duration
	Retrans   int
	RTT       time.Duration
}

// trState is the transport's per-partition slice: the epc/txn/* counters
// and latency histogram registered in one engine's telemetry registry, plus
// the frame and transaction pools endpoints on that engine draw from. With
// a single global engine there is exactly one state and behaviour matches
// the historical shared-state transport bit for bit.
type trState struct {
	eng *sim.Engine

	sent     *telemetry.Counter
	retrans  *telemetry.Counter
	timeouts *telemetry.Counter
	acks     *telemetry.Counter
	dups     *telemetry.Counter
	latency  *telemetry.Histogram

	// ackFree recycles ack frames: they are created per delivered data
	// frame and consumed in one Receive call at the sender, so pooling them
	// (engine-scoped, like packets and events) removes a per-ack allocation.
	ackFree []*Frame
	// dataFree recycles data frames. A data frame is shared by every cloned
	// attempt of its transaction, so it returns to the pool only when the
	// ack retires a transaction that was never retransmitted (control links
	// are FIFO, so the acked sole attempt having arrived means no clone is
	// still in flight). Retransmitted transactions leak their frame to the
	// GC rather than risk aliasing with a late clone.
	dataFree []*Frame
	// txnFree recycles transaction records, retired at ack time.
	txnFree []*txn
}

// Transport owns the transaction configuration shared by every control
// endpoint (timers, retry budget) and the per-engine states carrying
// telemetry and pools.
type Transport struct {
	eng *sim.Engine
	// T3 is the per-attempt retransmission timeout; N3 bounds the number
	// of retransmissions before the transaction fails terminally.
	T3 time.Duration
	N3 int

	// states holds one trState per partition engine hosting an endpoint,
	// creation order — the transport's own engine first — so the aggregate
	// accessors read deterministically.
	states []*trState
}

// NewTransport creates the engine's control transport with default timers.
func NewTransport(eng *sim.Engine) *Transport {
	t := &Transport{eng: eng, T3: DefaultT3, N3: DefaultN3}
	t.state(eng)
	return t
}

// Engine returns the driving simulation engine.
func (t *Transport) Engine() *sim.Engine { return t.eng }

// state returns the per-engine slice for eng, creating it (and registering
// its metrics in eng's registry) on first use.
func (t *Transport) state(eng *sim.Engine) *trState {
	for _, st := range t.states {
		if st.eng == eng {
			return st
		}
	}
	scope := eng.Metrics().Scope("epc").Scope("txn")
	st := &trState{
		eng:      eng,
		sent:     scope.Counter("sent"),
		retrans:  scope.Counter("retransmissions"),
		timeouts: scope.Counter("timeouts"),
		acks:     scope.Counter("acks"),
		dups:     scope.Counter("duplicates"),
		latency:  scope.Histogram("latency-ms"),
	}
	t.states = append(t.states, st)
	return st
}

// takeAckFrame pops a recycled ack frame, or allocates a fresh one homed in
// this state.
//
//acacia:hotpath
func (st *trState) takeAckFrame() *Frame {
	if n := len(st.ackFree); n > 0 {
		f := st.ackFree[n-1]
		st.ackFree[n-1] = nil
		st.ackFree = st.ackFree[:n-1]
		return f
	}
	return st.newFrame()
}

// takeDataFrame pops a recycled data frame, or allocates a fresh one homed
// in this state.
//
//acacia:hotpath
func (st *trState) takeDataFrame() *Frame {
	if n := len(st.dataFree); n > 0 {
		f := st.dataFree[n-1]
		st.dataFree[n-1] = nil
		st.dataFree = st.dataFree[:n-1]
		return f
	}
	return st.newFrame()
}

// newFrame is the frame pools' shared refill path. Noinline keeps the
// pool-miss allocation out of hotpath callers' escape profiles.
//
//go:noinline
func (st *trState) newFrame() *Frame {
	return &Frame{home: st}
}

// recycleDataFrame returns a data frame to its pool. Only the ack path may
// call it, and only for transactions whose single attempt was acked. A
// frame homed in another partition's state is left to the GC.
//
//acacia:hotpath
func (st *trState) recycleDataFrame(f *Frame) {
	if f.home != st {
		return
	}
	*f = Frame{home: st}
	st.dataFree = append(st.dataFree, f)
}

// recycleTxn zeroes a retired transaction and returns it to the pool. The
// cancelled T3 timer may still reference it from the event queue; that is
// harmless — cancelled events never fire.
//
//acacia:hotpath
func (st *trState) recycleTxn(tx *txn) {
	*tx = txn{}
	st.txnFree = append(st.txnFree, tx)
}

// takeTxn pops a recycled transaction record, or allocates one.
//
//acacia:hotpath
func (st *trState) takeTxn() *txn {
	if n := len(st.txnFree); n > 0 {
		tx := st.txnFree[n-1]
		st.txnFree[n-1] = nil
		st.txnFree = st.txnFree[:n-1]
		return tx
	}
	return newTxn()
}

// newTxn is the transaction pool's refill path, noinline for the same
// reason as newFrame.
//
//go:noinline
func newTxn() *txn {
	return &txn{}
}

// recycleAckFrame returns a consumed ack frame to its pool. Callers must
// have copied out every field they need first. Cross-partition acks (homed
// elsewhere) are left to the GC rather than pushed into a foreign pool.
//
//acacia:hotpath
func (st *trState) recycleAckFrame(f *Frame) {
	if f.home != st {
		return
	}
	*f = Frame{home: st}
	st.ackFree = append(st.ackFree, f)
}

// Retransmissions reports the total retransmission count across partitions.
func (t *Transport) Retransmissions() uint64 {
	return t.sum(func(st *trState) uint64 { return st.retrans.Value() })
}

// Timeouts reports the number of transactions that exhausted their retries.
func (t *Transport) Timeouts() uint64 {
	return t.sum(func(st *trState) uint64 { return st.timeouts.Value() })
}

// Duplicates reports how many re-delivered requests were suppressed.
func (t *Transport) Duplicates() uint64 {
	return t.sum(func(st *trState) uint64 { return st.dups.Value() })
}

func (t *Transport) sum(f func(*trState) uint64) uint64 {
	var total uint64
	for _, st := range t.states {
		total += f(st)
	}
	return total
}

// txnKey identifies a transaction: initiating peer address + sequence
// number from that peer's allocator.
type txnKey struct {
	peer pkt.Addr
	seq  uint32
}

// txn is one pending request awaiting its ack.
type txn struct {
	peer    pkt.Addr
	seq     uint32
	name    string
	tpl     *netsim.Packet // pristine template; each attempt sends a Clone
	retries int
	start   sim.Time
	timer   *sim.Event
	onFail  func(error)
	onDone  func(TxInfo)
}

// Frame is the transport PDU riding netsim packets between endpoints. Data
// frames carry the receiver-side continuation (the simulation's stand-in
// for dispatching a decoded message); ack frames echo the transport
// conditions the receiver observed so the sender can attribute them to the
// transaction. The type is opaque outside this package: shared-node
// handlers detect control traffic with FrameOf and hand it to Receive.
type Frame struct {
	ack     bool
	seq     uint32
	name    string
	deliver func()
	// Ack-side observations.
	queueWait time.Duration
	linkName  string
	// home is the per-engine state whose pool the frame came from; recycling
	// into any other state is refused (cross-partition frames go to the GC).
	home *trState
}

// FrameOf returns the control frame carried by p, or nil for data-plane
// packets. Nodes that carry both planes (eNB, switches) call this first and
// divert control frames to their endpoint's Receive.
func FrameOf(p *netsim.Packet) *Frame {
	f, _ := p.Payload.(*Frame)
	return f
}

// Endpoint is one control-plane attachment: a node plus per-peer routing,
// sequence allocation, the pending-transaction table and the duplicate
// filter. Endpoints on dedicated control nodes own the node handler; on
// shared nodes the owning layer intercepts frames and forwards them.
// An endpoint runs entirely in its node's partition: its timers arm on the
// node's engine and its pools and counters live in that engine's transport
// state.
type Endpoint struct {
	tr      *Transport
	eng     *sim.Engine
	st      *trState
	node    *netsim.Node
	routes  map[pkt.Addr]*netsim.Port
	nextSeq map[pkt.Addr]uint32
	pending map[txnKey]*txn
	seen    map[txnKey]bool
	// linkNames interns the "peer->self" label per ingress port so acks
	// don't rebuild the string for every delivered frame.
	linkNames map[*netsim.Port]string
	// expireF is the method value bound once at construction so arming the
	// per-attempt T3 timer allocates no closure.
	expireF func(any)
}

// Endpoint attaches the transport to a node. When own is true the endpoint
// installs itself as the node's packet handler (dedicated control nodes:
// MME, gateway control planes, the SDN controller); shared nodes pass
// false and forward frames explicitly.
func (t *Transport) Endpoint(node *netsim.Node, own bool) *Endpoint {
	eng := node.Engine()
	ep := &Endpoint{
		tr:        t,
		eng:       eng,
		st:        t.state(eng),
		node:      node,
		routes:    make(map[pkt.Addr]*netsim.Port),
		nextSeq:   make(map[pkt.Addr]uint32),
		pending:   make(map[txnKey]*txn),
		seen:      make(map[txnKey]bool),
		linkNames: make(map[*netsim.Port]string),
	}
	ep.expireF = ep.expireArg
	if own {
		node.SetHandler(ep.handleNode)
	}
	return ep
}

// Addr returns the endpoint's network address (its transaction identity).
func (ep *Endpoint) Addr() pkt.Addr { return ep.node.Addr() }

// Name returns the endpoint's node name.
func (ep *Endpoint) Name() string { return ep.node.Name() }

// Node returns the underlying network node.
func (ep *Endpoint) Node() *netsim.Node { return ep.node }

// Connect joins two endpoints with a dedicated control link (cfg applies in
// both directions) and installs the mutual routes.
func Connect(a, b *Endpoint, cfg netsim.LinkConfig) *netsim.Link {
	l := a.node.Network().ConnectSymmetric(a.node, b.node, cfg)
	a.routes[b.Addr()] = l.A
	b.routes[a.Addr()] = l.B
	return l
}

// NextSeq allocates the next sequence number toward peer. Sequences are
// strictly monotonic per (endpoint, peer) pair — the allocator that
// replaces the old hardcoded Seq constants.
func (ep *Endpoint) NextSeq(peer pkt.Addr) uint32 {
	ep.nextSeq[peer]++
	return ep.nextSeq[peer]
}

// Send opens a transaction toward peer: a data frame of the given wire
// size is transmitted on the route's link, retransmitted every T3 until
// acked, and failed terminally after N3 retransmissions. deliver runs
// exactly once at the receiver (duplicates are suppressed there); onFail
// (may be nil) receives the terminal timeout error; onDone (may be nil)
// receives the transaction's transport observations at ack time.
//
// seq must come from NextSeq for this peer — passing it in (rather than
// allocating here) lets callers stamp the same value into the protocol
// encoding (GTPv2 Seq, SCTP TSN) before computing the wire size.
//
// When the peer endpoint lives in another partition, deliver runs in that
// partition (the frame crosses on the wire); everything sender-side stays
// here.
//
//acacia:hotpath
func (ep *Endpoint) Send(peer pkt.Addr, seq uint32, name string, size int, deliver func(), onFail func(error), onDone func(TxInfo)) {
	if ep.routes[peer] == nil {
		noRoute(ep.Name(), peer)
	}
	f := ep.st.takeDataFrame()
	f.seq, f.name, f.deliver = seq, name, deliver
	tpl := ep.node.NewPacket()
	tpl.Flow = pkt.FiveTuple{Src: ep.Addr(), Dst: peer}
	tpl.Size = size
	tpl.Payload = f
	tx := ep.st.takeTxn()
	tx.peer, tx.seq, tx.name, tx.tpl = peer, seq, name, tpl
	tx.start = ep.eng.Now()
	tx.onFail, tx.onDone = onFail, onDone
	ep.pending[txnKey{peer, seq}] = tx
	ep.st.sent.Inc()
	ep.transmit(tx)
}

// noRoute is noinline so the panic-path boxing stays out of Send's escape
// profile.
//
//go:noinline
func noRoute(name string, peer pkt.Addr) {
	panic(fmt.Sprintf("ctl: endpoint %s has no route to %v", name, peer))
}

// transmit sends one attempt (a pooled clone of the pristine template, so
// per-hop state like queue wait restarts per attempt) and arms the T3 timer
// through the pre-bound expiry callback.
//
//acacia:hotpath
func (ep *Endpoint) transmit(tx *txn) {
	p := ep.node.Network().ClonePacket(tx.tpl)
	p.CreatedAt = ep.eng.Now()
	ep.routes[tx.peer].Send(p)
	tx.timer = ep.eng.ScheduleArg(ep.tr.T3, ep.expireF, tx)
}

// expireArg adapts expire to the engine's pre-bound callback shape.
func (ep *Endpoint) expireArg(v any) { ep.expire(v.(*txn)) }

// expire fires when T3 elapses without an ack: retransmit, or fail the
// transaction once the retry budget is spent.
func (ep *Endpoint) expire(tx *txn) {
	key := txnKey{tx.peer, tx.seq}
	if ep.pending[key] != tx {
		return // acked in the meantime
	}
	if tx.retries >= ep.tr.N3 {
		delete(ep.pending, key)
		ep.st.timeouts.Inc()
		ep.eng.Metrics().Scope("epc/txn").Emit("timeout",
			fmt.Sprintf("%s seq=%d %s->%v", tx.name, tx.seq, ep.Name(), tx.peer))
		if tx.onFail != nil {
			tx.onFail(fmt.Errorf("ctl: %s (seq %d) from %s to %v timed out after %d retransmissions",
				tx.name, tx.seq, ep.Name(), tx.peer, tx.retries))
		}
		return
	}
	tx.retries++
	ep.st.retrans.Inc()
	ep.transmit(tx)
}

// handleNode is the packet handler installed on dedicated control nodes.
// Anything that is not a control frame is dropped: these nodes carry no
// data plane.
func (ep *Endpoint) handleNode(ingress *netsim.Port, p *netsim.Packet) {
	if f := FrameOf(p); f != nil {
		ep.Receive(ingress, p, f)
		return
	}
	ep.node.Network().Release(p)
}

// Receive processes one arriving control frame: data frames are acked
// (always — a retransmitted request re-acks) and delivered once; ack
// frames retire the pending transaction and report its transport
// observations.
//
//acacia:hotpath
func (ep *Endpoint) Receive(ingress *netsim.Port, p *netsim.Packet, f *Frame) {
	peer := p.Flow.Src
	key := txnKey{peer, f.seq}
	if f.ack {
		tx := ep.pending[key]
		if tx == nil {
			// Duplicate ack; transaction already retired.
			ep.st.recycleAckFrame(f)
			ep.node.Network().Release(p)
			return
		}
		delete(ep.pending, key)
		if tx.timer != nil {
			tx.timer.Cancel()
		}
		ep.st.acks.Inc()
		rtt := ep.eng.Now().Sub(tx.start)
		ep.st.latency.Observe(float64(rtt) / float64(time.Millisecond))
		info := TxInfo{Link: f.linkName, QueueWait: f.queueWait, Retrans: tx.retries, RTT: rtt}
		onDone := tx.onDone
		ep.st.recycleAckFrame(f)
		ep.node.Network().Release(p)
		// Retire the transaction's resources. The template never rides a
		// link itself (attempts are clones), so it always returns to the
		// packet pool. The data frame is shared by every clone: with FIFO
		// control links, the acked attempt having arrived means earlier
		// attempts arrived or were dropped, but a retransmission issued
		// before this ack landed may still be in flight — so the frame is
		// recycled only when nothing was ever retransmitted.
		if tx.retries == 0 {
			if df := FrameOf(tx.tpl); df != nil {
				ep.st.recycleDataFrame(df)
			}
		}
		ep.node.Network().Release(tx.tpl)
		ep.st.recycleTxn(tx)
		if onDone != nil {
			onDone(info)
		}
		return
	}
	// Data frame: ack unconditionally so a lost ack is repaired by the
	// retransmitted request, echoing what this attempt experienced.
	if back := ep.routes[peer]; back != nil {
		ack := ep.st.takeAckFrame()
		ack.ack, ack.seq, ack.name = true, f.seq, f.name
		ack.queueWait, ack.linkName = p.QueueWait, ep.linkNameFor(ingress)
		ap := ep.node.NewPacket()
		ap.Flow = pkt.FiveTuple{Src: ep.Addr(), Dst: peer}
		ap.Size = AckBytes
		ap.Payload = ack
		ap.CreatedAt = ep.eng.Now()
		back.Send(ap)
	}
	dup := ep.seen[key]
	ep.node.Network().Release(p)
	if dup {
		ep.st.dups.Inc()
		return
	}
	ep.seen[key] = true
	if f.deliver != nil {
		f.deliver()
	}
}

// linkNameFor returns the interned "peer->self" label of the ingress port.
func (ep *Endpoint) linkNameFor(ingress *netsim.Port) string {
	if ingress == nil || ingress.Peer() == nil {
		return ""
	}
	if s, ok := ep.linkNames[ingress]; ok {
		return s
	}
	s := ingress.Peer().Node.Name() + "->" + ingress.Node.Name()
	ep.linkNames[ingress] = s
	return s
}
