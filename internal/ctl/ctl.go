// Package ctl is the control-plane transport of the testbed: it carries
// S1AP, GTPv2-C and OpenFlow exchanges as real packets over netsim links
// between control endpoints (eNB, MME, SGW-C/PGW-C, SDN controller), with a
// transaction layer on top — per-peer sequence allocation, a pending table
// keyed by (peer, seq), retransmission timers with a bounded retry budget
// (the GTPv2 T3/N3 timers; an SCTP-like reliable channel for S1AP), and
// duplicate suppression so re-delivered requests stay idempotent.
//
// Control-plane latency is therefore emergent — propagation plus queueing
// plus retransmission on the links the messages actually traverse — instead
// of a configured constant, and injected link loss exercises the recovery
// machinery end to end. A procedure that exhausts its retries fails loudly
// through its OnFail callback rather than hanging.
//
// Byte accounting note: callers account a message once when they first
// offer it to the transport (the §4 methodology counts protocol exchanges,
// not channel effects), so retransmissions and the small transport-level
// acks do not inflate the paper's message/byte tables. Ack frames still
// occupy link bandwidth like any other packet.
package ctl

import (
	"fmt"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// Transport defaults: T3 is the retransmission timeout, N3 the retry budget
// (TS 29.274 §7.6 uses T3-RESPONSE/N3-REQUESTS; 3 s / 3 tries on real
// hardware — the testbed uses a shorter timer scaled to its link delays).
const (
	DefaultT3 = 100 * time.Millisecond
	DefaultN3 = 3
)

// AckBytes is the wire size of a transport-level ack frame (an SCTP SACK
// chunk / GTPv2 triggered response is this order of magnitude). Acks are
// not protocol messages and are deliberately absent from the §4 accounting.
const AckBytes = 28

// TxInfo reports how one transaction fared on the wire, observed at ack
// time: the link the (finally delivered) request traversed, the queueing
// delay it accumulated, how many retransmissions the exchange needed, and
// the request->ack round-trip time.
type TxInfo struct {
	Link      string
	QueueWait time.Duration
	Retrans   int
	RTT       time.Duration
}

// Transport owns the transaction machinery shared by every control
// endpoint of one engine: timers, retry budget and the epc/txn/* telemetry
// scope (sent/retransmissions/timeouts/acks/duplicates counters and the
// transaction-latency histogram).
type Transport struct {
	eng *sim.Engine
	// T3 is the per-attempt retransmission timeout; N3 bounds the number
	// of retransmissions before the transaction fails terminally.
	T3 time.Duration
	N3 int

	sent     *telemetry.Counter
	retrans  *telemetry.Counter
	timeouts *telemetry.Counter
	acks     *telemetry.Counter
	dups     *telemetry.Counter
	latency  *telemetry.Histogram
}

// NewTransport creates the engine's control transport with default timers.
func NewTransport(eng *sim.Engine) *Transport {
	scope := eng.Metrics().Scope("epc").Scope("txn")
	return &Transport{
		eng:      eng,
		T3:       DefaultT3,
		N3:       DefaultN3,
		sent:     scope.Counter("sent"),
		retrans:  scope.Counter("retransmissions"),
		timeouts: scope.Counter("timeouts"),
		acks:     scope.Counter("acks"),
		dups:     scope.Counter("duplicates"),
		latency:  scope.Histogram("latency-ms"),
	}
}

// Engine returns the driving simulation engine.
func (t *Transport) Engine() *sim.Engine { return t.eng }

// Retransmissions reports the total retransmission count.
func (t *Transport) Retransmissions() uint64 { return t.retrans.Value() }

// Timeouts reports the number of transactions that exhausted their retries.
func (t *Transport) Timeouts() uint64 { return t.timeouts.Value() }

// Duplicates reports how many re-delivered requests were suppressed.
func (t *Transport) Duplicates() uint64 { return t.dups.Value() }

// txnKey identifies a transaction: initiating peer address + sequence
// number from that peer's allocator.
type txnKey struct {
	peer pkt.Addr
	seq  uint32
}

// txn is one pending request awaiting its ack.
type txn struct {
	peer    pkt.Addr
	seq     uint32
	name    string
	tpl     *netsim.Packet // pristine template; each attempt sends a Clone
	retries int
	start   sim.Time
	timer   *sim.Event
	onFail  func(error)
	onDone  func(TxInfo)
}

// Frame is the transport PDU riding netsim packets between endpoints. Data
// frames carry the receiver-side continuation (the simulation's stand-in
// for dispatching a decoded message); ack frames echo the transport
// conditions the receiver observed so the sender can attribute them to the
// transaction. The type is opaque outside this package: shared-node
// handlers detect control traffic with FrameOf and hand it to Receive.
type Frame struct {
	ack     bool
	seq     uint32
	name    string
	deliver func()
	// Ack-side observations.
	queueWait time.Duration
	linkName  string
}

// FrameOf returns the control frame carried by p, or nil for data-plane
// packets. Nodes that carry both planes (eNB, switches) call this first and
// divert control frames to their endpoint's Receive.
func FrameOf(p *netsim.Packet) *Frame {
	f, _ := p.Payload.(*Frame)
	return f
}

// Endpoint is one control-plane attachment: a node plus per-peer routing,
// sequence allocation, the pending-transaction table and the duplicate
// filter. Endpoints on dedicated control nodes own the node handler; on
// shared nodes the owning layer intercepts frames and forwards them.
type Endpoint struct {
	tr      *Transport
	node    *netsim.Node
	routes  map[pkt.Addr]*netsim.Port
	nextSeq map[pkt.Addr]uint32
	pending map[txnKey]*txn
	seen    map[txnKey]bool
}

// Endpoint attaches the transport to a node. When own is true the endpoint
// installs itself as the node's packet handler (dedicated control nodes:
// MME, gateway control planes, the SDN controller); shared nodes pass
// false and forward frames explicitly.
func (t *Transport) Endpoint(node *netsim.Node, own bool) *Endpoint {
	ep := &Endpoint{
		tr:      t,
		node:    node,
		routes:  make(map[pkt.Addr]*netsim.Port),
		nextSeq: make(map[pkt.Addr]uint32),
		pending: make(map[txnKey]*txn),
		seen:    make(map[txnKey]bool),
	}
	if own {
		node.SetHandler(ep.handleNode)
	}
	return ep
}

// Addr returns the endpoint's network address (its transaction identity).
func (ep *Endpoint) Addr() pkt.Addr { return ep.node.Addr() }

// Name returns the endpoint's node name.
func (ep *Endpoint) Name() string { return ep.node.Name() }

// Node returns the underlying network node.
func (ep *Endpoint) Node() *netsim.Node { return ep.node }

// Connect joins two endpoints with a dedicated control link (cfg applies in
// both directions) and installs the mutual routes.
func Connect(a, b *Endpoint, cfg netsim.LinkConfig) *netsim.Link {
	l := a.node.Network().ConnectSymmetric(a.node, b.node, cfg)
	a.routes[b.Addr()] = l.A
	b.routes[a.Addr()] = l.B
	return l
}

// NextSeq allocates the next sequence number toward peer. Sequences are
// strictly monotonic per (endpoint, peer) pair — the allocator that
// replaces the old hardcoded Seq constants.
func (ep *Endpoint) NextSeq(peer pkt.Addr) uint32 {
	ep.nextSeq[peer]++
	return ep.nextSeq[peer]
}

// Send opens a transaction toward peer: a data frame of the given wire
// size is transmitted on the route's link, retransmitted every T3 until
// acked, and failed terminally after N3 retransmissions. deliver runs
// exactly once at the receiver (duplicates are suppressed there); onFail
// (may be nil) receives the terminal timeout error; onDone (may be nil)
// receives the transaction's transport observations at ack time.
//
// seq must come from NextSeq for this peer — passing it in (rather than
// allocating here) lets callers stamp the same value into the protocol
// encoding (GTPv2 Seq, SCTP TSN) before computing the wire size.
func (ep *Endpoint) Send(peer pkt.Addr, seq uint32, name string, size int, deliver func(), onFail func(error), onDone func(TxInfo)) {
	if ep.routes[peer] == nil {
		panic(fmt.Sprintf("ctl: endpoint %s has no route to %v", ep.Name(), peer))
	}
	f := &Frame{seq: seq, name: name, deliver: deliver}
	tpl := &netsim.Packet{
		Flow:    pkt.FiveTuple{Src: ep.Addr(), Dst: peer},
		Size:    size,
		Payload: f,
	}
	tx := &txn{
		peer: peer, seq: seq, name: name, tpl: tpl,
		start: ep.tr.eng.Now(), onFail: onFail, onDone: onDone,
	}
	ep.pending[txnKey{peer, seq}] = tx
	ep.tr.sent.Inc()
	ep.transmit(tx)
}

// transmit sends one attempt (a clone of the pristine template, so per-hop
// state like queue wait restarts per attempt) and arms the T3 timer.
func (ep *Endpoint) transmit(tx *txn) {
	p := tx.tpl.Clone()
	p.CreatedAt = ep.tr.eng.Now()
	ep.routes[tx.peer].Send(p)
	tx.timer = ep.tr.eng.Schedule(ep.tr.T3, func() { ep.expire(tx) })
}

// expire fires when T3 elapses without an ack: retransmit, or fail the
// transaction once the retry budget is spent.
func (ep *Endpoint) expire(tx *txn) {
	key := txnKey{tx.peer, tx.seq}
	if ep.pending[key] != tx {
		return // acked in the meantime
	}
	if tx.retries >= ep.tr.N3 {
		delete(ep.pending, key)
		ep.tr.timeouts.Inc()
		ep.tr.eng.Metrics().Scope("epc/txn").Emit("timeout",
			fmt.Sprintf("%s seq=%d %s->%v", tx.name, tx.seq, ep.Name(), tx.peer))
		if tx.onFail != nil {
			tx.onFail(fmt.Errorf("ctl: %s (seq %d) from %s to %v timed out after %d retransmissions",
				tx.name, tx.seq, ep.Name(), tx.peer, tx.retries))
		}
		return
	}
	tx.retries++
	ep.tr.retrans.Inc()
	ep.transmit(tx)
}

// handleNode is the packet handler installed on dedicated control nodes.
// Anything that is not a control frame is dropped: these nodes carry no
// data plane.
func (ep *Endpoint) handleNode(ingress *netsim.Port, p *netsim.Packet) {
	if f := FrameOf(p); f != nil {
		ep.Receive(ingress, p, f)
	}
}

// Receive processes one arriving control frame: data frames are acked
// (always — a retransmitted request re-acks) and delivered once; ack
// frames retire the pending transaction and report its transport
// observations.
func (ep *Endpoint) Receive(ingress *netsim.Port, p *netsim.Packet, f *Frame) {
	peer := p.Flow.Src
	key := txnKey{peer, f.seq}
	if f.ack {
		tx := ep.pending[key]
		if tx == nil {
			return // duplicate ack; transaction already retired
		}
		delete(ep.pending, key)
		if tx.timer != nil {
			tx.timer.Cancel()
		}
		ep.tr.acks.Inc()
		rtt := ep.tr.eng.Now().Sub(tx.start)
		ep.tr.latency.Observe(float64(rtt) / float64(time.Millisecond))
		if tx.onDone != nil {
			tx.onDone(TxInfo{Link: f.linkName, QueueWait: f.queueWait, Retrans: tx.retries, RTT: rtt})
		}
		return
	}
	// Data frame: ack unconditionally so a lost ack is repaired by the
	// retransmitted request, echoing what this attempt experienced.
	if back := ep.routes[peer]; back != nil {
		linkName := ""
		if ingress != nil && ingress.Peer() != nil {
			linkName = ingress.Peer().Node.Name() + "->" + ingress.Node.Name()
		}
		ack := &Frame{ack: true, seq: f.seq, name: f.name, queueWait: p.QueueWait, linkName: linkName}
		ap := &netsim.Packet{
			Flow:      pkt.FiveTuple{Src: ep.Addr(), Dst: peer},
			Size:      AckBytes,
			Payload:   ack,
			CreatedAt: ep.tr.eng.Now(),
		}
		back.Send(ap)
	}
	if ep.seen[key] {
		ep.tr.dups.Inc()
		return
	}
	ep.seen[key] = true
	if f.deliver != nil {
		f.deliver()
	}
}
