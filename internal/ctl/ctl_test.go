package ctl

import (
	"sort"
	"strings"
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// pair builds two connected endpoints on a fresh engine.
func pair(t *testing.T, cfg netsim.LinkConfig) (*sim.Engine, *Transport, *Endpoint, *Endpoint, *netsim.Link) {
	t.Helper()
	eng := sim.NewEngine(7)
	nw := netsim.New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	tr := NewTransport(eng)
	a := tr.Endpoint(na, true)
	b := tr.Endpoint(nb, true)
	l := Connect(a, b, cfg)
	return eng, tr, a, b, l
}

func TestNextSeqMonotonic(t *testing.T) {
	_, _, a, b, _ := pair(t, netsim.LinkConfig{Propagation: time.Millisecond})
	var prev uint32
	for i := 0; i < 100; i++ {
		s := a.NextSeq(b.Addr())
		if s <= prev {
			t.Fatalf("seq %d after %d: allocator not strictly monotonic", s, prev)
		}
		prev = s
	}
	// Per-peer independence: a fresh peer starts its own sequence space.
	other := pkt.AddrFrom(10, 0, 0, 9)
	if s := a.NextSeq(other); s != 1 {
		t.Fatalf("fresh peer first seq = %d, want 1", s)
	}
	// The reverse direction is its own allocator too.
	if s := b.NextSeq(a.Addr()); s != 1 {
		t.Fatalf("reverse-direction first seq = %d, want 1", s)
	}
}

func TestLossFreeDelivery(t *testing.T) {
	eng, tr, a, b, _ := pair(t, netsim.LinkConfig{Propagation: 2 * time.Millisecond})
	delivered := 0
	var info TxInfo
	doneCalls := 0
	seq := a.NextSeq(b.Addr())
	a.Send(b.Addr(), seq, "Req", 100, func() { delivered++ }, func(err error) {
		t.Errorf("unexpected failure: %v", err)
	}, func(ti TxInfo) { info = ti; doneCalls++ })
	eng.Run()
	if delivered != 1 || doneCalls != 1 {
		t.Fatalf("delivered=%d doneCalls=%d, want 1/1", delivered, doneCalls)
	}
	if info.Retrans != 0 {
		t.Errorf("loss-free exchange reported %d retransmissions", info.Retrans)
	}
	if info.RTT < 4*time.Millisecond {
		t.Errorf("RTT %v below two propagation delays", info.RTT)
	}
	if info.Link != "a->b" {
		t.Errorf("link = %q, want a->b", info.Link)
	}
	if tr.Retransmissions() != 0 || tr.Timeouts() != 0 || tr.Duplicates() != 0 {
		t.Errorf("loss-free counters: retrans=%d timeouts=%d dups=%d",
			tr.Retransmissions(), tr.Timeouts(), tr.Duplicates())
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	eng, tr, a, b, l := pair(t, netsim.LinkConfig{Propagation: time.Millisecond})
	// 5% keeps the chance of any transaction burning all N3+1 attempts
	// negligible, so the drop/retransmission bookkeeping stays exact.
	l.SetLoss(0.05)
	const n = 200
	delivered := make(map[uint32]int)
	failures := 0
	for i := 0; i < n; i++ {
		seq := a.NextSeq(b.Addr())
		a.Send(b.Addr(), seq, "Req", 200, func() { delivered[seq]++ }, func(err error) {
			failures++
		}, nil)
	}
	eng.Run()
	if failures != 0 {
		t.Fatalf("%d transactions timed out at 5%% loss with N3=%d retries", failures, tr.N3)
	}
	if len(delivered) != n {
		t.Fatalf("delivered %d distinct transactions, want %d", len(delivered), n)
	}
	seqs := make([]int, 0, len(delivered))
	for seq := range delivered {
		seqs = append(seqs, int(seq))
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if count := delivered[uint32(seq)]; count != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", seq, count)
		}
	}
	droppedOnWire := l.StatsAB().Dropped + l.StatsBA().Dropped
	if tr.Retransmissions() == 0 {
		t.Fatal("no retransmissions at 5% loss — loss injection is not exercising recovery")
	}
	// With zero timeouts every wire drop (request or ack) is repaired by
	// exactly one retransmission of the affected request.
	if tr.Retransmissions() != droppedOnWire {
		t.Errorf("retransmissions=%d, wire drops=%d: counts should match when nothing timed out",
			tr.Retransmissions(), droppedOnWire)
	}
	// A dropped ack forces a duplicate request the receiver must suppress.
	ackDrops := tr.Retransmissions() - l.StatsAB().Dropped
	if tr.Duplicates() < ackDrops {
		t.Errorf("duplicates=%d, want at least %d (one per dropped ack)", tr.Duplicates(), ackDrops)
	}
}

func TestTimeoutAfterRetryBudget(t *testing.T) {
	eng, tr, a, b, l := pair(t, netsim.LinkConfig{Propagation: time.Millisecond})
	l.SetLoss(1.0)
	delivered := 0
	var failErr error
	failCalls := 0
	seq := a.NextSeq(b.Addr())
	a.Send(b.Addr(), seq, "Req", 100, func() { delivered++ }, func(err error) {
		failErr = err
		failCalls++
	}, func(TxInfo) { t.Error("onDone fired for a transaction that cannot complete") })
	start := eng.Now()
	eng.Run() // terminates: bounded retries mean no livelock
	if delivered != 0 {
		t.Fatalf("delivered %d over a fully lossy link", delivered)
	}
	if failCalls != 1 {
		t.Fatalf("onFail fired %d times, want exactly once", failCalls)
	}
	if failErr == nil || !strings.Contains(failErr.Error(), "timed out") {
		t.Fatalf("error = %v, want terminal timeout", failErr)
	}
	if tr.Timeouts() != 1 {
		t.Errorf("timeouts counter = %d, want 1", tr.Timeouts())
	}
	if got := uint64(tr.N3); tr.Retransmissions() != got {
		t.Errorf("retransmissions = %d, want the full budget %d", tr.Retransmissions(), got)
	}
	// Terminal failure lands after (N3+1) armed timers, not earlier.
	wantElapsed := time.Duration(tr.N3+1) * tr.T3
	if elapsed := eng.Now().Sub(start); elapsed < wantElapsed {
		t.Errorf("failed after %v, want >= %v", elapsed, wantElapsed)
	}
}

func TestDuplicateRequestSuppressed(t *testing.T) {
	eng, tr, a, b, _ := pair(t, netsim.LinkConfig{Propagation: time.Millisecond})
	delivered := 0
	seq := a.NextSeq(b.Addr())
	a.Send(b.Addr(), seq, "Req", 100, func() { delivered++ }, nil, nil)
	eng.Run()
	// Re-offer the same (peer, seq): the receiver must re-ack (retiring the
	// sender's new pending entry) but not deliver again.
	redelivered := false
	a.Send(b.Addr(), seq, "Req", 100, func() { t.Error("duplicate was delivered") }, func(err error) {
		t.Errorf("duplicate send failed: %v", err)
	}, func(TxInfo) { redelivered = true })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	if !redelivered {
		t.Fatal("duplicate request was not re-acked")
	}
	if tr.Duplicates() != 1 {
		t.Errorf("duplicates counter = %d, want 1", tr.Duplicates())
	}
}

func TestSendWithoutRoutePanics(t *testing.T) {
	_, _, a, _, _ := pair(t, netsim.LinkConfig{Propagation: time.Millisecond})
	defer func() {
		if recover() == nil {
			t.Fatal("Send to an unrouted peer did not panic")
		}
	}()
	a.Send(pkt.AddrFrom(192, 0, 2, 1), 1, "Req", 10, nil, nil, nil)
}
