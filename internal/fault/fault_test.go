package fault

import (
	"testing"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// rig is a two-host network with an injector over the single link.
type rig struct {
	eng  *sim.Engine
	a, b *netsim.Host
	link *netsim.Link
	in   *Injector
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	l := nw.ConnectSymmetric(na, nb, netsim.LinkConfig{Propagation: time.Millisecond})
	in := NewInjector(eng)
	in.RegisterLink("ab", l)
	in.RegisterNode("b", nb)
	return &rig{eng: eng, a: netsim.NewHost(na), b: netsim.NewHost(nb), link: l, in: in}
}

// sendAt schedules a packet from a to b at the given offset.
func (r *rig) sendAt(at time.Duration) {
	r.eng.Schedule(at, func() {
		r.a.Send(r.b.Node.Addr(), 1, 80, pkt.ProtoUDP, 100, nil)
	})
}

func TestLinkDownWindow(t *testing.T) {
	r := newRig(t)
	var got []sim.Time
	r.b.Listen(80, netsim.AppFunc(func(_ *netsim.Host, _ *netsim.Packet) {
		got = append(got, r.eng.Now())
	}))
	err := r.in.Apply(Plan{Name: "one-window", Events: []Event{
		{Kind: LinkDown, Target: "ab", At: 10 * time.Millisecond, Duration: 20 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.sendAt(5 * time.Millisecond)  // before window: delivered
	r.sendAt(15 * time.Millisecond) // inside window: dropped
	r.sendAt(40 * time.Millisecond) // after recovery: delivered
	r.eng.Run()

	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want 2", got)
	}
	if got[0] != sim.Time(6*time.Millisecond) || got[1] != sim.Time(41*time.Millisecond) {
		t.Errorf("delivery times = %v, want [6ms 41ms]", got)
	}
	st := r.link.StatsAB()
	if st.Dropped != 1 || st.Sent != 2 || st.Offered() != 3 {
		t.Errorf("stats = %+v, want 1 dropped / 2 sent / 3 offered", st)
	}

	// The timeline records the injection and the recovery under fault/.
	var inject, recover int
	for _, ev := range r.eng.Metrics().Events() {
		if ev.Scope != "fault" {
			continue
		}
		switch ev.Name {
		case "inject":
			inject++
			if ev.Detail != "link-down ab" {
				t.Errorf("inject detail = %q", ev.Detail)
			}
			if ev.At != 10*time.Millisecond {
				t.Errorf("inject at %v, want 10ms", ev.At)
			}
		case "recover":
			recover++
			if ev.At != 30*time.Millisecond {
				t.Errorf("recover at %v, want 30ms", ev.At)
			}
		}
	}
	if inject != 1 || recover != 1 {
		t.Errorf("timeline inject/recover = %d/%d, want 1/1", inject, recover)
	}
}

func TestOverlappingWindowsHoldLinkDown(t *testing.T) {
	r := newRig(t)
	err := r.in.Apply(Plan{Events: []Event{
		{Kind: LinkDown, Target: "ab", At: 10 * time.Millisecond, Duration: 40 * time.Millisecond},
		{Kind: LinkDown, Target: "ab", At: 20 * time.Millisecond, Duration: 10 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// At 35ms the inner window has recovered but the outer one still holds
	// the link down; at 55ms both are done.
	r.eng.Schedule(35*time.Millisecond, func() {
		if !r.link.Down() {
			t.Error("link repaired while outer window still active")
		}
	})
	r.eng.Schedule(55*time.Millisecond, func() {
		if r.link.Down() {
			t.Error("link still down after all windows recovered")
		}
	})
	r.eng.Run()
}

func TestLossBurstWindow(t *testing.T) {
	r := newRig(t)
	var got int
	r.b.Listen(80, netsim.AppFunc(func(_ *netsim.Host, _ *netsim.Packet) { got++ }))
	err := r.in.Apply(Plan{Events: []Event{
		{Kind: LinkLoss, Target: "ab", At: 10 * time.Millisecond, Duration: 10 * time.Millisecond, Loss: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.sendAt(5 * time.Millisecond)
	r.sendAt(15 * time.Millisecond) // burst with Loss=1: certainly dropped
	r.sendAt(25 * time.Millisecond)
	r.eng.Run()
	if got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
	if st := r.link.StatsAB(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}

func TestNodeCrashIsolatesNode(t *testing.T) {
	r := newRig(t)
	var got int
	r.b.Listen(80, netsim.AppFunc(func(_ *netsim.Host, _ *netsim.Packet) { got++ }))
	err := r.in.Apply(Plan{Events: []Event{
		{Kind: NodeCrash, Target: "b", At: 10 * time.Millisecond, Duration: 10 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r.sendAt(15 * time.Millisecond)
	r.sendAt(25 * time.Millisecond)
	r.eng.Run()
	if got != 1 {
		t.Errorf("delivered %d, want 1 (crash window drops the first)", got)
	}
}

func TestApplyRejectsUnknownTargets(t *testing.T) {
	r := newRig(t)
	if err := r.in.Apply(Plan{Events: []Event{{Kind: LinkDown, Target: "nope"}}}); err == nil {
		t.Error("unknown link accepted")
	}
	if err := r.in.Apply(Plan{Events: []Event{{Kind: SiteCrash, Target: "nope"}}}); err == nil {
		t.Error("unknown site accepted")
	}
	if err := r.in.Apply(Plan{Events: []Event{{Kind: LinkLoss, Target: "ab", Loss: 0}}}); err == nil {
		t.Error("loss burst without probability accepted")
	}
	// A rejected plan schedules nothing.
	r.eng.Run()
	if n := r.in.injected.Value(); n != 0 {
		t.Errorf("injected = %d after rejected plans, want 0", n)
	}
}

func TestPermanentFaultNeverRecovers(t *testing.T) {
	r := newRig(t)
	if err := r.in.Apply(Plan{Events: []Event{
		{Kind: LinkDown, Target: "ab", At: 10 * time.Millisecond}, // Duration 0
	}}); err != nil {
		t.Fatal(err)
	}
	r.eng.RunFor(5 * time.Second)
	if !r.link.Down() {
		t.Error("permanent fault recovered")
	}
	if n := r.in.recovered.Value(); n != 0 {
		t.Errorf("recovered = %d, want 0", n)
	}
}
