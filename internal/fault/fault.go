// Package fault is the deterministic fault-injection subsystem: a
// declarative Plan of timed events (link down/up windows, loss bursts,
// node and edge-site crashes, control-path degradation) applied to a
// testbed's registered targets and driven entirely by the virtual clock.
// Every injection and recovery is recorded on the telemetry timeline under
// the fault/ scope, so experiment output correlates observed degradation
// with its cause, and identical plans on identical seeds replay
// byte-identically.
package fault

import (
	"fmt"
	"sort"
	"time"

	"acacia/internal/netsim"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// Kind enumerates the fault classes a Plan can schedule.
type Kind int

const (
	// LinkDown fails a registered link in both directions for the event
	// window: every packet offered while down is dropped at the
	// transmitter. Registering a control link (S1-MME, S11, OpenFlow) and
	// pointing LinkDown or LinkLoss at it is how control-path degradation
	// is expressed — the ctl transport's retransmissions then carry the
	// recovery.
	LinkDown Kind = iota
	// LinkLoss injects independent per-packet loss with the event's Loss
	// probability for the window (a loss burst).
	LinkLoss
	// NodeCrash fails every link attached to a registered node for the
	// window, isolating it from the network without destroying its state —
	// the simulation analog of a host losing power and rebooting.
	NodeCrash
	// SiteCrash fails every link of a registered edge site (its gateway
	// fabric and CI server together), the outage the MEC failover path is
	// built to survive.
	SiteCrash
)

// String names the kind for timeline details.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkLoss:
		return "link-loss"
	case NodeCrash:
		return "node-crash"
	case SiteCrash:
		return "site-crash"
	}
	return fmt.Sprintf("kind-%d", int(k))
}

// Event is one scheduled fault: Kind applied to the registered Target at
// virtual-time offset At (relative to Apply), recovered Duration later. A
// zero Duration means the plan never recovers the fault (a permanent
// outage).
type Event struct {
	Kind   Kind
	Target string
	At     time.Duration
	// Duration is the fault window; zero leaves the fault in place for the
	// rest of the run.
	Duration time.Duration
	// Loss is the per-packet drop probability for LinkLoss events.
	Loss float64
}

// Plan is a declarative fault schedule. Events may be listed in any order;
// Apply sorts them by activation time (ties keep declaration order) so a
// plan's effect is independent of how it was assembled.
type Plan struct {
	Name   string
	Events []Event
}

// Injector applies fault plans to registered targets. Testbeds register
// their interesting links, nodes and sites under stable names; experiments
// then describe outages against those names without reaching into
// topology internals.
type Injector struct {
	eng   *sim.Engine
	links map[string]*netsim.Link
	nodes map[string]*netsim.Node
	sites map[string][]*netsim.Link

	// downRef / lossRef count overlapping windows per link so recovery of
	// one window does not repair a link another window still holds down.
	downRef map[*netsim.Link]int
	lossRef map[*netsim.Link]int

	scope     telemetry.Scope
	injected  *telemetry.Counter
	recovered *telemetry.Counter
	active    *telemetry.Gauge
}

// NewInjector creates an injector on eng, registering its counters under
// the fault/ scope of the engine's telemetry registry.
func NewInjector(eng *sim.Engine) *Injector {
	scope := eng.Metrics().Scope("fault")
	return &Injector{
		eng:       eng,
		links:     make(map[string]*netsim.Link),
		nodes:     make(map[string]*netsim.Node),
		sites:     make(map[string][]*netsim.Link),
		downRef:   make(map[*netsim.Link]int),
		lossRef:   make(map[*netsim.Link]int),
		scope:     scope,
		injected:  scope.Counter("injected"),
		recovered: scope.Counter("recovered"),
		active:    scope.Gauge("active"),
	}
}

// RegisterLink names a link as a fault target.
func (in *Injector) RegisterLink(name string, l *netsim.Link) {
	in.links[name] = l
}

// RegisterNode names a node as a crash target: NodeCrash fails every link
// attached to one of its ports.
func (in *Injector) RegisterNode(name string, n *netsim.Node) {
	in.nodes[name] = n
}

// RegisterSite names a group of links as an edge site: SiteCrash fails
// them together.
func (in *Injector) RegisterSite(name string, links ...*netsim.Link) {
	in.sites[name] = links
}

// Link returns the registered link, or nil.
func (in *Injector) Link(name string) *netsim.Link { return in.links[name] }

// targets resolves an event to the links it manipulates.
func (in *Injector) targets(e Event) ([]*netsim.Link, error) {
	switch e.Kind {
	case LinkDown, LinkLoss:
		l, ok := in.links[e.Target]
		if !ok {
			return nil, fmt.Errorf("fault: unknown link %q", e.Target)
		}
		return []*netsim.Link{l}, nil
	case NodeCrash:
		n, ok := in.nodes[e.Target]
		if !ok {
			return nil, fmt.Errorf("fault: unknown node %q", e.Target)
		}
		var out []*netsim.Link
		for _, pt := range n.Ports() {
			if l := pt.Link(); l != nil {
				out = append(out, l)
			}
		}
		return out, nil
	case SiteCrash:
		ls, ok := in.sites[e.Target]
		if !ok {
			return nil, fmt.Errorf("fault: unknown site %q", e.Target)
		}
		return ls, nil
	}
	return nil, fmt.Errorf("fault: unknown kind %d", int(e.Kind))
}

// Apply validates every event against the registered targets and schedules
// the whole plan on the virtual clock. Validation is up-front so a typo in
// a late event fails at Apply time, not hours of virtual time into a run.
func (in *Injector) Apply(p Plan) error {
	for _, e := range p.Events {
		if _, err := in.targets(e); err != nil {
			return err
		}
		if e.Kind == LinkLoss && (e.Loss <= 0 || e.Loss > 1) {
			return fmt.Errorf("fault: link-loss on %q needs Loss in (0,1], got %v", e.Target, e.Loss)
		}
	}
	events := make([]Event, len(p.Events))
	copy(events, p.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		e := e
		in.eng.Schedule(e.At, func() { in.inject(e) })
	}
	return nil
}

// inject activates one event and, when it has a window, schedules its
// recovery.
func (in *Injector) inject(e Event) {
	links, err := in.targets(e)
	if err != nil {
		// Targets were validated at Apply time; registration cannot shrink.
		panic(err)
	}
	detail := fmt.Sprintf("%s %s", e.Kind, e.Target)
	in.scope.Emit("inject", detail)
	in.injected.Inc()
	in.active.Add(1)
	for _, l := range links {
		switch e.Kind {
		case LinkLoss:
			in.lossRef[l]++
			l.SetLoss(e.Loss)
		default:
			in.downRef[l]++
			l.SetDown(true)
		}
	}
	if e.Duration > 0 {
		in.eng.Schedule(e.Duration, func() { in.recover(e, links) })
	}
}

// recover deactivates one event's window. Reference counts keep a link
// failed while any overlapping window still holds it.
func (in *Injector) recover(e Event, links []*netsim.Link) {
	detail := fmt.Sprintf("%s %s", e.Kind, e.Target)
	in.scope.Emit("recover", detail)
	in.recovered.Inc()
	in.active.Add(-1)
	for _, l := range links {
		switch e.Kind {
		case LinkLoss:
			in.lossRef[l]--
			if in.lossRef[l] <= 0 {
				delete(in.lossRef, l)
				l.SetLoss(0)
			}
		default:
			in.downRef[l]--
			if in.downRef[l] <= 0 {
				delete(in.downRef, l)
				l.SetDown(false)
			}
		}
	}
}
