package geo

import "fmt"

// Retail floor dimensions, in meters. The paper's store is a single floor
// divided into 5 sections and 21 subsections with 7 landmarks and 24
// checkpoints (Fig. 9(a)); localization errors land around 3 m on average
// with all 7 landmarks, which fixes the scale at tens of meters.
const (
	RetailWidth  = 42.0
	RetailHeight = 30.0
)

// RetailSectionNames are the store sections of the paper's scenario.
var RetailSectionNames = []string{"food", "toys", "electronics", "clothes", "appliances"}

// RetailFloor builds the evaluation environment: a 42x30 m floor cut into a
// 7x3 grid of 21 subsections (6x10 m each) grouped into 5 sections, with 7
// landmarks spread across sections and 24 checkpoints along the aisles.
func RetailFloor() *Floor {
	f := &Floor{
		Bounds:   Rect{Min: Point{0, 0}, Max: Point{RetailWidth, RetailHeight}},
		Sections: RetailSectionNames,
	}

	// 21 subsections: 7 columns x 3 rows of 6x10 m cells. Sections take
	// vertical slices of columns: food (cols 0-1), toys (col 2),
	// electronics (cols 3-4), clothes (col 5), appliances (col 6).
	colSection := []string{"food", "food", "toys", "electronics", "electronics", "clothes", "appliances"}
	id := 0
	for row := 0; row < 3; row++ {
		for col := 0; col < 7; col++ {
			f.Subsections = append(f.Subsections, Subsection{
				ID:      id,
				Section: colSection[col],
				Bounds: Rect{
					Min: Point{float64(col) * 6, float64(row) * 10},
					Max: Point{float64(col+1) * 6, float64(row+1) * 10},
				},
			})
			id++
		}
	}

	// 7 landmarks (L1..L7), one per column aisle, staggered between rows so
	// three-landmark subsets range from well-spread to nearly collinear —
	// the spread behind Fig. 9(b)'s best/worst gap.
	landmarkPos := []Point{
		{3, 5}, {9, 25}, {15, 5}, {21, 15}, {27, 25}, {33, 5}, {39, 20},
	}
	for i, pos := range landmarkPos {
		f.Landmarks = append(f.Landmarks, Landmark{
			Name:    fmt.Sprintf("L%d", i+1),
			Pos:     pos,
			Section: colSection[int(pos.X)/6],
		})
	}

	// 24 checkpoints C1..C24 along a serpentine aisle walk covering every
	// section, mirroring the map's dense checkpoint coverage.
	checkpointPos := []Point{
		{2, 3}, {5, 8}, {4, 14}, {2, 22}, {5, 27}, // food
		{9, 26}, {10, 18}, {9, 9}, {11, 4}, // toys
		{15, 3}, {16, 12}, {14, 20}, {17, 26}, // electronics west
		{21, 24}, {22, 16}, {20, 8}, {23, 4}, // electronics east
		{27, 6}, {28, 15}, {26, 24}, // clothes
		{33, 26}, {33, 14}, {34, 6}, {39, 15}, // appliances
	}
	for i, pos := range checkpointPos {
		f.Checkpoints = append(f.Checkpoints, Checkpoint{
			Name: fmt.Sprintf("C%d", i+1),
			Pos:  pos,
		})
	}
	return f
}

// ThreeLandmarkFloor builds the smaller environment of the Fig. 6
// walking-trace experiment: three landmarks in a line and a path that walks
// from the first past the second to the third, with four checkpoints.
func ThreeLandmarkFloor() *Floor {
	f := &Floor{
		Bounds:   Rect{Min: Point{0, 0}, Max: Point{60, 10}},
		Sections: []string{"hall"},
	}
	f.Subsections = append(f.Subsections, Subsection{ID: 0, Section: "hall", Bounds: f.Bounds})
	f.Landmarks = []Landmark{
		{Name: "Landmark1", Pos: Point{5, 5}, Section: "hall"},
		{Name: "Landmark2", Pos: Point{30, 5}, Section: "hall"},
		{Name: "Landmark3", Pos: Point{55, 5}, Section: "hall"},
	}
	f.Checkpoints = []Checkpoint{
		{Name: "C1", Pos: Point{5, 4}},
		{Name: "C2", Pos: Point{22, 4}},
		{Name: "C3", Pos: Point{38, 4}},
		{Name: "C4", Pos: Point{55, 4}},
	}
	return f
}

// Fig6WalkPath is the subscriber's walk for the Fig. 6 trace: from
// landmark 1 to landmark 3 along the hall.
func Fig6WalkPath() Path {
	return Path{Waypoints: []Point{{5, 4}, {55, 4}}}
}

// RetailWalkPath returns a serpentine walk through all 24 retail
// checkpoints in order.
func RetailWalkPath(f *Floor) Path {
	var pts []Point
	for _, c := range f.Checkpoints {
		pts = append(pts, c.Pos)
	}
	return Path{Waypoints: pts}
}
