package geo

import (
	"math"
	"time"
)

// Walker is a deterministic timed traversal of a Path at constant speed:
// the waypoint mobility model of the mobility scenarios. It is pure
// geometry — position is a function of elapsed time only, so every walk
// replays identically regardless of scheduling.
type Walker struct {
	Path Path
	// Speed is the walking speed in meters per second.
	Speed float64
}

// Duration reports how long the full walk takes.
func (w Walker) Duration() time.Duration {
	if w.Speed <= 0 {
		return 0
	}
	return time.Duration(w.Path.Length() / w.Speed * float64(time.Second))
}

// PosAt returns the walker's position after elapsed time, clamped to the
// path endpoints.
func (w Walker) PosAt(elapsed time.Duration) Point {
	return w.Path.At(w.Speed * elapsed.Seconds())
}

// Crossing is a cell-boundary crossing event emitted by a walk: at time At
// the walker moves from cell From into cell To, at position Pos (the first
// sampled position inside To, refined by bisection to within ~1ms).
type Crossing struct {
	At       time.Duration
	From, To int
	Pos      Point
}

// Crossings walks the path and reports every cell-boundary crossing.
// cellOf maps a position to a cell index (for mobility scenarios, the
// serving eNB); step is the sampling interval. Each detected transition is
// refined by bisection so At is accurate to ~1ms independent of step. The
// result is pure: no RNG, no engine state.
func (w Walker) Crossings(cellOf func(Point) int, step time.Duration) []Crossing {
	if w.Speed <= 0 || step <= 0 || len(w.Path.Waypoints) == 0 {
		return nil
	}
	var out []Crossing
	total := w.Duration()
	prev := cellOf(w.PosAt(0))
	for t := step; ; t += step {
		if t > total {
			t = total
		}
		cur := cellOf(w.PosAt(t))
		if cur != prev {
			at := w.refine(cellOf, t-step, t, prev)
			out = append(out, Crossing{At: at, From: prev, To: cur, Pos: w.PosAt(at)})
			prev = cur
		}
		if t >= total {
			break
		}
	}
	return out
}

// refine bisects (lo, hi] for the earliest time whose cell differs from
// fromCell, to millisecond precision.
func (w Walker) refine(cellOf func(Point) int, lo, hi time.Duration, fromCell int) time.Duration {
	for hi-lo > time.Millisecond {
		mid := lo + (hi-lo)/2
		if cellOf(w.PosAt(mid)) == fromCell {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// MidlineCell maps positions to cell 0 (west of x) or 1 (east of x): the
// two-cell coverage model of the mobility scenarios.
func MidlineCell(x float64) func(Point) int {
	return func(p Point) int {
		if p.X < x || math.IsNaN(p.X) {
			return 0
		}
		return 1
	}
}
