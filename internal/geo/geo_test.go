package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPointDist(t *testing.T) {
	if d := (Point{0, 0}).Dist(Point{3, 4}); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := (Point{1, 1}).Dist(Point{1, 1}); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 20}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{6, 10}}
	if !r.Contains(Point{0, 0}) {
		t.Error("min corner should be inside")
	}
	if r.Contains(Point{6, 10}) {
		t.Error("max corner should be outside")
	}
	if !r.Contains(Point{3, 5}) {
		t.Error("center should be inside")
	}
	if r.Center() != (Point{3, 5}) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestClampResultsAreContained(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{6, 10}}
	pts := []Point{
		{-1, -1}, {7, 11}, {6, 10}, {6, 5}, {3, 10},
		{3, 5}, {0, 0}, {100, -100}, {5.999, 9.999},
	}
	for _, pt := range pts {
		c := r.Clamp(pt)
		if !r.Contains(c) {
			t.Errorf("Clamp(%v) = %v not Contained by %v", pt, c, r)
		}
	}
	// Interior points pass through unchanged.
	if got := r.Clamp(Point{3, 5}); got != (Point{3, 5}) {
		t.Errorf("interior point moved: %v", got)
	}
}

func TestClampedBoundaryEstimateStaysOnFloor(t *testing.T) {
	// A localization estimate clamped to the floor boundary must still map
	// to a subsection/section: the Max edge previously fell outside every
	// max-exclusive cell.
	f := RetailFloor()
	est := f.Bounds.Clamp(Point{RetailWidth + 3, RetailHeight + 3})
	if ss := f.SubsectionAt(est); ss == nil {
		t.Fatalf("clamped estimate %v in no subsection", est)
	}
	if sec := f.SectionAt(est); sec == "" {
		t.Fatalf("clamped estimate %v in no section", sec)
	}
	if ids := f.SubsectionsNear(est, 0); len(ids) == 0 {
		t.Fatal("clamped estimate prunes to zero subsections")
	}
}

func TestWalkerPosAndDuration(t *testing.T) {
	w := Walker{Path: Path{Waypoints: []Point{{0, 0}, {20, 0}}}, Speed: 2}
	if d := w.Duration(); d != 10*time.Second {
		t.Errorf("Duration = %v", d)
	}
	if p := w.PosAt(0); p != (Point{0, 0}) {
		t.Errorf("PosAt(0) = %v", p)
	}
	if p := w.PosAt(5 * time.Second); p != (Point{10, 0}) {
		t.Errorf("PosAt(5s) = %v", p)
	}
	if p := w.PosAt(time.Hour); p != (Point{20, 0}) {
		t.Errorf("PosAt(beyond) = %v", p)
	}
	if (Walker{Path: Path{Waypoints: []Point{{0, 0}, {20, 0}}}}).Duration() != 0 {
		t.Error("zero-speed walker has nonzero duration")
	}
}

func TestWalkerCrossings(t *testing.T) {
	// Walk 0→20 at 2 m/s with a midline at x=10: one crossing at t=5s.
	w := Walker{Path: Path{Waypoints: []Point{{0, 0}, {20, 0}}}, Speed: 2}
	cr := w.Crossings(MidlineCell(10), 250*time.Millisecond)
	if len(cr) != 1 {
		t.Fatalf("crossings = %v, want 1", cr)
	}
	if cr[0].From != 0 || cr[0].To != 1 {
		t.Errorf("crossing cells = %d→%d", cr[0].From, cr[0].To)
	}
	if diff := cr[0].At - 5*time.Second; diff < 0 || diff > 2*time.Millisecond {
		t.Errorf("crossing at %v, want ~5s", cr[0].At)
	}
	if cr[0].Pos.X < 10 {
		t.Errorf("crossing pos %v still west of midline", cr[0].Pos)
	}
	// There and back: two crossings, second one returns to cell 0.
	w2 := Walker{Path: Path{Waypoints: []Point{{0, 0}, {20, 0}, {0, 0}}}, Speed: 2}
	cr2 := w2.Crossings(MidlineCell(10), 250*time.Millisecond)
	if len(cr2) != 2 || cr2[1].From != 1 || cr2[1].To != 0 {
		t.Fatalf("round-trip crossings = %v", cr2)
	}
	// Determinism: same inputs, same output.
	again := w2.Crossings(MidlineCell(10), 250*time.Millisecond)
	if len(again) != len(cr2) || again[0] != cr2[0] || again[1] != cr2[1] {
		t.Error("crossings not deterministic")
	}
}

func TestWalkerCrossingsDegenerate(t *testing.T) {
	if cr := (Walker{}).Crossings(MidlineCell(10), time.Second); cr != nil {
		t.Errorf("empty walker crossings = %v", cr)
	}
	w := Walker{Path: Path{Waypoints: []Point{{0, 0}, {5, 0}}}, Speed: 1}
	if cr := w.Crossings(MidlineCell(10), time.Second); cr != nil {
		t.Errorf("no-crossing walk reported %v", cr)
	}
}

func TestRetailFloorStructure(t *testing.T) {
	f := RetailFloor()
	if got := len(f.Subsections); got != 21 {
		t.Errorf("subsections = %d, want 21", got)
	}
	if got := len(f.Sections); got != 5 {
		t.Errorf("sections = %d, want 5", got)
	}
	if got := len(f.Landmarks); got != 7 {
		t.Errorf("landmarks = %d, want 7", got)
	}
	if got := len(f.Checkpoints); got != 24 {
		t.Errorf("checkpoints = %d, want 24", got)
	}
}

func TestRetailFloorPartitionIsExhaustiveAndDisjoint(t *testing.T) {
	f := RetailFloor()
	// Sample a grid of points: each in-bounds point lies in exactly one
	// subsection.
	for x := 0.5; x < RetailWidth; x += 1.0 {
		for y := 0.5; y < RetailHeight; y += 1.0 {
			n := 0
			for i := range f.Subsections {
				if f.Subsections[i].Bounds.Contains(Point{x, y}) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("point (%v,%v) in %d subsections", x, y, n)
			}
		}
	}
}

func TestRetailFloorEverySectionHasSubsections(t *testing.T) {
	f := RetailFloor()
	count := map[string]int{}
	for _, ss := range f.Subsections {
		count[ss.Section]++
	}
	for _, s := range f.Sections {
		if count[s] == 0 {
			t.Errorf("section %q has no subsections", s)
		}
	}
	total := 0
	for _, c := range count {
		total += c
	}
	if total != 21 {
		t.Errorf("subsection total = %d", total)
	}
}

func TestLandmarksAndCheckpointsInBounds(t *testing.T) {
	f := RetailFloor()
	for _, l := range f.Landmarks {
		if !f.Bounds.Contains(l.Pos) {
			t.Errorf("landmark %s at %v out of bounds", l.Name, l.Pos)
		}
		if f.SectionAt(l.Pos) != l.Section {
			t.Errorf("landmark %s section %q, floor says %q", l.Name, l.Section, f.SectionAt(l.Pos))
		}
	}
	for _, c := range f.Checkpoints {
		if !f.Bounds.Contains(c.Pos) {
			t.Errorf("checkpoint %s at %v out of bounds", c.Name, c.Pos)
		}
		if f.SubsectionAt(c.Pos) == nil {
			t.Errorf("checkpoint %s in no subsection", c.Name)
		}
	}
}

func TestSubsectionAtOutside(t *testing.T) {
	f := RetailFloor()
	if f.SubsectionAt(Point{-1, -1}) != nil {
		t.Error("out-of-bounds point mapped to a subsection")
	}
	if f.SectionAt(Point{999, 999}) != "" {
		t.Error("out-of-bounds point mapped to a section")
	}
}

func TestSubsectionsNear(t *testing.T) {
	f := RetailFloor()
	pt := Point{3, 5} // center of subsection 0
	ids := f.SubsectionsNear(pt, 0)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("radius 0 ids = %v, want [0]", ids)
	}
	// Paper: ACACIA searches 2-6 subsections out of 21 with ~3 m accuracy.
	ids = f.SubsectionsNear(pt, 6)
	if len(ids) < 2 || len(ids) > 6 {
		t.Errorf("radius 6 ids = %v, want 2..6 cells", ids)
	}
	// Larger radius covers more cells, never fewer.
	more := f.SubsectionsNear(pt, 12)
	if len(more) < len(ids) {
		t.Errorf("radius 12 returned fewer cells (%d) than radius 6 (%d)", len(more), len(ids))
	}
}

func TestSubsectionsOfSections(t *testing.T) {
	f := RetailFloor()
	food := f.SubsectionsOfSections("food")
	if len(food) != 6 { // 2 columns x 3 rows
		t.Errorf("food subsections = %d, want 6", len(food))
	}
	both := f.SubsectionsOfSections("food", "toys")
	if len(both) != 9 {
		t.Errorf("food+toys subsections = %d, want 9", len(both))
	}
	if len(f.SubsectionsOfSections("nonexistent")) != 0 {
		t.Error("unknown section returned cells")
	}
}

func TestFloorLookups(t *testing.T) {
	f := RetailFloor()
	if f.Landmark("L1") == nil || f.Landmark("L7") == nil {
		t.Error("missing landmark lookups")
	}
	if f.Landmark("L99") != nil {
		t.Error("phantom landmark")
	}
	if f.Checkpoint("C24") == nil {
		t.Error("missing checkpoint C24")
	}
	if f.Checkpoint("C25") != nil {
		t.Error("phantom checkpoint")
	}
}

func TestPathLengthAndAt(t *testing.T) {
	p := Path{Waypoints: []Point{{0, 0}, {10, 0}, {10, 10}}}
	if p.Length() != 20 {
		t.Errorf("Length = %v", p.Length())
	}
	if got := p.At(0); got != (Point{0, 0}) {
		t.Errorf("At(0) = %v", got)
	}
	if got := p.At(5); got != (Point{5, 0}) {
		t.Errorf("At(5) = %v", got)
	}
	if got := p.At(15); got != (Point{10, 5}) {
		t.Errorf("At(15) = %v", got)
	}
	if got := p.At(100); got != (Point{10, 10}) {
		t.Errorf("At(beyond) = %v", got)
	}
	if got := p.At(-5); got != (Point{0, 0}) {
		t.Errorf("At(negative) = %v", got)
	}
}

func TestEmptyPath(t *testing.T) {
	var p Path
	if p.Length() != 0 {
		t.Error("empty path length")
	}
	if p.At(5) != (Point{}) {
		t.Error("empty path At")
	}
}

func TestThreeLandmarkFloor(t *testing.T) {
	f := ThreeLandmarkFloor()
	if len(f.Landmarks) != 3 || len(f.Checkpoints) != 4 {
		t.Fatalf("landmarks=%d checkpoints=%d", len(f.Landmarks), len(f.Checkpoints))
	}
	path := Fig6WalkPath()
	if path.Length() != 50 {
		t.Errorf("walk length = %v, want 50", path.Length())
	}
	// The walk starts near landmark 1 and ends near landmark 3.
	if f.Landmarks[0].Pos.Dist(path.At(0)) > 2 {
		t.Error("walk does not start at landmark 1")
	}
	if f.Landmarks[2].Pos.Dist(path.At(path.Length())) > 2 {
		t.Error("walk does not end at landmark 3")
	}
}

func TestRetailWalkPathVisitsAllCheckpoints(t *testing.T) {
	f := RetailFloor()
	p := RetailWalkPath(f)
	if len(p.Waypoints) != 24 {
		t.Errorf("waypoints = %d", len(p.Waypoints))
	}
	if p.Length() <= 0 {
		t.Error("walk has no length")
	}
}
