// Package geo models the 2-D indoor environments of the ACACIA experiments:
// points, floor plans partitioned into sections and subsections, landmark
// (LTE-direct publisher) placements, checkpoints and walking paths.
//
// The canonical instance is RetailFloor, the paper's evaluation environment:
// a store floor divided into 5 sections and 21 subsections, with 7 landmarks
// and 24 checkpoints (Fig. 9(a)).
package geo

import (
	"fmt"
	"math"
)

// Point is a position in meters on the floor plane.
type Point struct {
	X, Y float64
}

// Dist reports the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Lerp linearly interpolates from p to q by t in [0,1].
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle (min corner inclusive, max exclusive).
type Rect struct {
	Min, Max Point
}

// Contains reports whether pt lies inside r.
func (r Rect) Contains(pt Point) bool {
	return pt.X >= r.Min.X && pt.X < r.Max.X && pt.Y >= r.Min.Y && pt.Y < r.Max.Y
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns the point inside r closest to pt. Localization clamps
// estimates with it: a retail user is known to be inside the store, which
// bounds the damage of degenerate landmark geometries. Because Contains is
// max-exclusive, the upper edge clamps to the largest representable
// coordinate below Max, so a clamped point always satisfies r.Contains and
// falls inside some subsection of a floor that tiles r.
func (r Rect) Clamp(pt Point) Point {
	if pt.X < r.Min.X {
		pt.X = r.Min.X
	}
	if pt.X >= r.Max.X {
		pt.X = math.Nextafter(r.Max.X, math.Inf(-1))
	}
	if pt.Y < r.Min.Y {
		pt.Y = r.Min.Y
	}
	if pt.Y >= r.Max.Y {
		pt.Y = math.Nextafter(r.Max.Y, math.Inf(-1))
	}
	return pt
}

// Landmark is an LTE-direct publisher at a known position: a sales
// associate's phone in the retail scenario.
type Landmark struct {
	Name string
	Pos  Point
	// Section is the store section the landmark advertises.
	Section string
}

// Checkpoint is a measurement position used in the localization and
// search-space experiments; objects in the AR database sit at checkpoints.
type Checkpoint struct {
	Name string
	Pos  Point
}

// Subsection is one geo-tag cell of the floor.
type Subsection struct {
	ID      int
	Section string
	Bounds  Rect
}

// Floor is a partitioned indoor environment.
type Floor struct {
	Bounds      Rect
	Sections    []string
	Subsections []Subsection
	Landmarks   []Landmark
	Checkpoints []Checkpoint
}

// SubsectionAt returns the subsection containing pt, or nil when pt is
// outside every cell.
func (f *Floor) SubsectionAt(pt Point) *Subsection {
	for i := range f.Subsections {
		if f.Subsections[i].Bounds.Contains(pt) {
			return &f.Subsections[i]
		}
	}
	return nil
}

// SectionAt returns the section name containing pt, or "".
func (f *Floor) SectionAt(pt Point) string {
	if ss := f.SubsectionAt(pt); ss != nil {
		return ss.Section
	}
	return ""
}

// SubsectionsNear returns the IDs of all subsections whose center lies
// within radius meters of pt, always including the cell containing pt. This
// is the pruning set the AR back-end searches when given an estimated
// location with bounded error.
func (f *Floor) SubsectionsNear(pt Point, radius float64) []int {
	var ids []int
	for i := range f.Subsections {
		ss := &f.Subsections[i]
		if ss.Bounds.Contains(pt) || ss.Bounds.Center().Dist(pt) <= radius {
			ids = append(ids, ss.ID)
		}
	}
	return ids
}

// SubsectionsOfSections returns the IDs of all subsections belonging to the
// named sections: the pruning set of the coarser rxPower baseline.
func (f *Floor) SubsectionsOfSections(sections ...string) []int {
	want := make(map[string]bool, len(sections))
	for _, s := range sections {
		want[s] = true
	}
	var ids []int
	for i := range f.Subsections {
		if want[f.Subsections[i].Section] {
			ids = append(ids, f.Subsections[i].ID)
		}
	}
	return ids
}

// Landmark returns the named landmark, or nil.
func (f *Floor) Landmark(name string) *Landmark {
	for i := range f.Landmarks {
		if f.Landmarks[i].Name == name {
			return &f.Landmarks[i]
		}
	}
	return nil
}

// Checkpoint returns the named checkpoint, or nil.
func (f *Floor) Checkpoint(name string) *Checkpoint {
	for i := range f.Checkpoints {
		if f.Checkpoints[i].Name == name {
			return &f.Checkpoints[i]
		}
	}
	return nil
}

// Path is a polyline walk through the environment.
type Path struct {
	Waypoints []Point
}

// Length reports the total path length in meters.
func (p Path) Length() float64 {
	var total float64
	for i := 1; i < len(p.Waypoints); i++ {
		total += p.Waypoints[i-1].Dist(p.Waypoints[i])
	}
	return total
}

// At returns the position after walking dist meters from the start,
// clamping to the endpoints.
func (p Path) At(dist float64) Point {
	if len(p.Waypoints) == 0 {
		return Point{}
	}
	if dist <= 0 {
		return p.Waypoints[0]
	}
	for i := 1; i < len(p.Waypoints); i++ {
		seg := p.Waypoints[i-1].Dist(p.Waypoints[i])
		if dist <= seg && seg > 0 {
			return p.Waypoints[i-1].Lerp(p.Waypoints[i], dist/seg)
		}
		dist -= seg
	}
	return p.Waypoints[len(p.Waypoints)-1]
}
