// Package trace generates the LTE-direct walking traces of the paper's
// localization experiments: a subscriber moves along a path through an
// environment of landmark publishers, periodically receiving service
// discovery messages annotated with rxPower and SNR (Fig. 6), and
// checkpoint measurement campaigns collect per-position landmark readings
// for the accuracy evaluation (Fig. 9).
package trace

import (
	"time"

	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/sim"
)

// Sample is one received discovery message during a walk.
type Sample struct {
	At       sim.Time
	Pos      geo.Point // subscriber position at reception
	Landmark string
	RxPower  float64
	SNR      float64
}

// WalkConfig parameterizes a walking trace.
type WalkConfig struct {
	// Path is the walk; the subscriber moves at Speed m/s from its start.
	Path  geo.Path
	Speed float64 // default 1.0 m/s
	// Period is the publishers' broadcast period (default 5 s, the
	// LTE-direct discovery interval).
	Period time.Duration
	// Seed drives the channel's shadowing.
	Seed uint64
}

// Walk runs a subscriber along the path past the floor's landmarks and
// returns every received discovery message. The subscriber subscribes
// service-wide, so all landmarks are heard (subject to the channel).
func Walk(floor *geo.Floor, cfg WalkConfig) []Sample {
	if cfg.Speed == 0 {
		cfg.Speed = 1.0
	}
	if cfg.Period == 0 {
		cfg.Period = 5 * time.Second
	}
	eng := sim.NewEngine(cfg.Seed)
	env := d2d.NewEnv(eng)

	for i, lm := range floor.Landmarks {
		dev := env.AddDevice(lm.Name, lm.Pos)
		dev.Publish("trace", d2d.ServiceCode(1, uint16(i), 0), lm.Section, cfg.Period)
	}
	sub := env.AddDevice("walker", cfg.Path.At(0))

	var samples []Sample
	sub.Subscribe(d2d.Expression{Code: d2d.ServiceCode(1, 0, 0), Mask: d2d.MaskService},
		func(m d2d.DiscoveryMessage) {
			samples = append(samples, Sample{
				At:       m.At,
				Pos:      sub.Pos(),
				Landmark: m.From,
				RxPower:  m.RxPowerDBm,
				SNR:      m.SNRDB,
			})
		})

	// Move the subscriber every 100 ms.
	const step = 100 * time.Millisecond
	sim.NewTicker(eng, step, func() {
		dist := cfg.Speed * eng.Now().Seconds()
		sub.SetPos(cfg.Path.At(dist))
	})

	walkDuration := time.Duration(cfg.Path.Length() / cfg.Speed * float64(time.Second))
	eng.RunUntil(sim.Time(walkDuration))
	return samples
}

// CheckpointReading is the averaged rxPower from one landmark at one
// checkpoint.
type CheckpointReading struct {
	Checkpoint string
	Pos        geo.Point
	Landmark   string
	RxPower    float64
}

// Campaign collects averaged landmark readings at every checkpoint of the
// floor: the measurement traces behind the Fig. 9 accuracy evaluation.
// samplesPerPoint broadcasts are averaged per landmark (default 5).
func Campaign(floor *geo.Floor, seed uint64, samplesPerPoint int) []CheckpointReading {
	if samplesPerPoint <= 0 {
		samplesPerPoint = 5
	}
	eng := sim.NewEngine(seed)
	env := d2d.NewEnv(eng)
	rng := eng.RNG().Fork("campaign")

	var out []CheckpointReading
	for _, cp := range floor.Checkpoints {
		for _, lm := range floor.Landmarks {
			dist := cp.Pos.Dist(lm.Pos)
			var sum float64
			n := 0
			for s := 0; s < samplesPerPoint; s++ {
				rx := env.PathLoss.RxPower(dist, rng)
				if rx < d2d.SensitivityDBm {
					continue
				}
				sum += rx
				n++
			}
			if n == 0 {
				continue
			}
			out = append(out, CheckpointReading{
				Checkpoint: cp.Name,
				Pos:        cp.Pos,
				Landmark:   lm.Name,
				RxPower:    sum / float64(n),
			})
		}
	}
	return out
}

// ByCheckpoint groups campaign readings by checkpoint name.
func ByCheckpoint(readings []CheckpointReading) map[string][]CheckpointReading {
	m := make(map[string][]CheckpointReading)
	for _, r := range readings {
		m[r.Checkpoint] = append(m[r.Checkpoint], r)
	}
	return m
}
