package trace

import (
	"sort"
	"testing"
	"time"

	"acacia/internal/geo"
)

func TestWalkProducesSamplesFromAllLandmarks(t *testing.T) {
	floor := geo.ThreeLandmarkFloor()
	samples := Walk(floor, WalkConfig{Path: geo.Fig6WalkPath(), Speed: 0.1, Period: 2 * time.Second, Seed: 6})
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	seen := map[string]bool{}
	for _, s := range samples {
		seen[s.Landmark] = true
		if s.RxPower > 0 || s.RxPower < -120 {
			t.Fatalf("implausible rxPower %v", s.RxPower)
		}
		if s.SNR < 0 || s.SNR > 25 {
			t.Fatalf("SNR %v outside decode span", s.SNR)
		}
	}
	for _, lm := range floor.Landmarks {
		if !seen[lm.Name] {
			t.Errorf("landmark %s never heard", lm.Name)
		}
	}
}

func TestWalkRxPowerPeaksNearLandmarks(t *testing.T) {
	// Fig. 6(c): each landmark's rxPower peaks as the walker passes it.
	floor := geo.ThreeLandmarkFloor()
	samples := Walk(floor, WalkConfig{Path: geo.Fig6WalkPath(), Speed: 0.5, Period: time.Second, Seed: 7})
	// For landmark 2 (mid-hall), the max-rxPower sample should be closer
	// to the landmark than the average sample.
	l2 := floor.Landmarks[1]
	var best Sample
	bestRx := -1e9
	var sumDist float64
	n := 0
	for _, s := range samples {
		if s.Landmark != l2.Name {
			continue
		}
		n++
		sumDist += s.Pos.Dist(l2.Pos)
		if s.RxPower > bestRx {
			bestRx = s.RxPower
			best = s
		}
	}
	if n < 10 {
		t.Fatalf("only %d samples for %s", n, l2.Name)
	}
	if best.Pos.Dist(l2.Pos) > sumDist/float64(n) {
		t.Error("peak rxPower not nearer the landmark than average")
	}
}

func TestWalkSNRSaturatesNearLandmark(t *testing.T) {
	floor := geo.ThreeLandmarkFloor()
	samples := Walk(floor, WalkConfig{Path: geo.Fig6WalkPath(), Speed: 0.5, Period: time.Second, Seed: 8})
	// Near any landmark (< 5 m) SNR pegs at the decode span while rxPower
	// still varies: the Fig. 6(b) vs (c) contrast.
	var nearSNR []float64
	var nearRx []float64
	for _, s := range samples {
		lm := floor.Landmark(s.Landmark)
		if s.Pos.Dist(lm.Pos) < 5 {
			nearSNR = append(nearSNR, s.SNR)
			nearRx = append(nearRx, s.RxPower)
		}
	}
	if len(nearSNR) < 3 {
		t.Skip("too few near-landmark samples for this seed")
	}
	allClamped := true
	for _, v := range nearSNR {
		if v != 25 {
			allClamped = false
		}
	}
	if !allClamped {
		t.Errorf("near-landmark SNR not saturated: %v", nearSNR)
	}
	varies := false
	for i := 1; i < len(nearRx); i++ {
		if nearRx[i] != nearRx[0] {
			varies = true
		}
	}
	if !varies {
		t.Error("near-landmark rxPower shows no variation")
	}
}

func TestCampaignCoversAllCheckpoints(t *testing.T) {
	floor := geo.RetailFloor()
	readings := Campaign(floor, 9, 5)
	grouped := ByCheckpoint(readings)
	if len(grouped) != len(floor.Checkpoints) {
		t.Fatalf("checkpoints with readings = %d, want %d", len(grouped), len(floor.Checkpoints))
	}
	cps := make([]string, 0, len(grouped))
	for cp := range grouped {
		cps = append(cps, cp)
	}
	sort.Strings(cps)
	for _, cp := range cps {
		if rs := grouped[cp]; len(rs) < 3 {
			t.Errorf("checkpoint %s hears only %d landmarks", cp, len(rs))
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	floor := geo.RetailFloor()
	a := Campaign(floor, 11, 3)
	b := Campaign(floor, 11, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := Campaign(floor, 12, 3)
	same := true
	for i := range a {
		if i < len(c) && a[i].RxPower != c[i].RxPower {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical campaigns")
	}
}

func TestCampaignPowerDecreasesWithDistance(t *testing.T) {
	floor := geo.RetailFloor()
	readings := Campaign(floor, 13, 20)
	// Correlation check: average rxPower of near pairs (< 10 m) must
	// exceed far pairs (> 25 m).
	var nearSum, farSum float64
	var nearN, farN int
	for _, r := range readings {
		d := r.Pos.Dist(floor.Landmark(r.Landmark).Pos)
		switch {
		case d < 10:
			nearSum += r.RxPower
			nearN++
		case d > 25:
			farSum += r.RxPower
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("distance buckets empty")
	}
	if nearSum/float64(nearN) <= farSum/float64(farN) {
		t.Error("near readings not stronger than far readings")
	}
}
