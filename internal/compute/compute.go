// Package compute models the computation substrates of the ACACIA
// experiments: the four devices the paper profiles in Fig. 3 (a One+ One
// smartphone, one- and eight-core i7 servers, a GTX TITAN GPU) plus the
// 32-core Xeon server of §7.3, and a processor-sharing server that scales
// per-client runtime with load (Fig. 12).
//
// Device rates are calibrated so that the *relative* speedups match the
// paper's measurements: 36x/182x/1087x for SURF feature extraction and
// 223x/852x/3284x for brute-force matching (vs. the phone), anchored at the
// paper's 2-second phone SURF runtime on a 320x240 frame.
package compute

import (
	"fmt"
	"math"
	"time"

	"acacia/internal/sim"
)

// Device describes a compute platform by its processing rates.
type Device struct {
	Name string
	// Cores is the usable parallelism (informational; rates below are
	// aggregate across cores).
	Cores int
	// SURFPixelsPerSec is the aggregate pixel rate of SURF keypoint
	// detection + descriptor extraction.
	SURFPixelsPerSec float64
	// MatchMACsPerSec is the aggregate descriptor multiply-accumulate rate
	// of brute-force k-NN matching.
	MatchMACsPerSec float64
	// JPEGPixelsPerSec is the grayscale JPEG encode rate (used on the
	// phone for frame compression; §7.3 measures 23-53 ms per frame).
	JPEGPixelsPerSec float64
}

// phoneSURFPixelsPerSec anchors the calibration: 320x240 = 76800 pixels in
// the paper's measured 2 s.
const phoneSURFPixelsPerSec = 76800.0 / 2.0

// phoneMatchMACsPerSec anchors matching such that the eight-core i7
// (852x the phone) matches a 1704.9-feature frame against a 1000-feature
// object in ≈20 ms, the Fig. 3(h) single-object regime.
const phoneMatchMACsPerSec = 6.4e6

// The paper's measured speedup factors over the phone.
const (
	surfSpeedupI7x1 = 36
	surfSpeedupI7x8 = 182
	surfSpeedupGPU  = 1087

	matchSpeedupI7x1 = 223
	matchSpeedupI7x8 = 852
	matchSpeedupGPU  = 3284
)

// The profiled devices.
var (
	// OnePlusOne is the One+ One smartphone (client device).
	OnePlusOne = Device{
		Name: "One+", Cores: 4,
		SURFPixelsPerSec: phoneSURFPixelsPerSec,
		MatchMACsPerSec:  phoneMatchMACsPerSec,
		// §7.3: JPEG-90 encode of a 1280x720 grayscale frame takes 53 ms.
		JPEGPixelsPerSec: 1280 * 720 / 0.053,
	}
	// I7x1 is a single i7 core.
	I7x1 = Device{
		Name: "i7(1)", Cores: 1,
		SURFPixelsPerSec: phoneSURFPixelsPerSec * surfSpeedupI7x1,
		MatchMACsPerSec:  phoneMatchMACsPerSec * matchSpeedupI7x1,
		JPEGPixelsPerSec: 200e6,
	}
	// I7x8 is the eight-core i7 server.
	I7x8 = Device{
		Name: "i7(8)", Cores: 8,
		SURFPixelsPerSec: phoneSURFPixelsPerSec * surfSpeedupI7x8,
		MatchMACsPerSec:  phoneMatchMACsPerSec * matchSpeedupI7x8,
		JPEGPixelsPerSec: 800e6,
	}
	// GPU is the GeForce GTX TITAN server.
	GPU = Device{
		Name: "GPU", Cores: 2688,
		SURFPixelsPerSec: phoneSURFPixelsPerSec * surfSpeedupGPU,
		MatchMACsPerSec:  phoneMatchMACsPerSec * matchSpeedupGPU,
		JPEGPixelsPerSec: 800e6,
	}
	// Xeon32 is the 32-core Xeon of the §7.3 search-space experiments,
	// roughly 2.7x the eight-core i7 on parallel matching.
	Xeon32 = Device{
		Name: "Xeon(32)", Cores: 32,
		SURFPixelsPerSec: phoneSURFPixelsPerSec * surfSpeedupI7x8 * 2.2,
		MatchMACsPerSec:  phoneMatchMACsPerSec * matchSpeedupI7x8 * 2.7,
		JPEGPixelsPerSec: 1600e6,
	}
)

// Devices lists the calibrated platforms in the paper's presentation order.
func Devices() []Device {
	return []Device{OnePlusOne, I7x1, I7x8, GPU, Xeon32}
}

// SURFTime reports the modeled SURF detect+describe runtime for a frame of
// the given pixel count.
func (d Device) SURFTime(pixels int) time.Duration {
	return secs(float64(pixels) / d.SURFPixelsPerSec)
}

// MatchTime reports the modeled brute-force matching runtime for the given
// descriptor workload in multiply-accumulate operations.
func (d Device) MatchTime(macs float64) time.Duration {
	return secs(macs / d.MatchMACsPerSec)
}

// JPEGTime reports the modeled grayscale JPEG encode time for a frame of
// the given pixel count.
func (d Device) JPEGTime(pixels int) time.Duration {
	return secs(float64(pixels) / d.JPEGPixelsPerSec)
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// String names the device.
func (d Device) String() string { return d.Name }

// Job is one unit of work submitted to a Server.
type Job struct {
	// Work is the job size in abstract operations (MACs for matching).
	Work float64
	// Done is invoked in simulation context when the job completes,
	// receiving the job's total sojourn time.
	Done func(elapsed time.Duration)

	remaining float64
	started   sim.Time
}

// Server is an egalitarian processor-sharing compute server in virtual
// time: all active jobs progress simultaneously, each receiving an equal
// share of the aggregate rate. With one client a job runs at full speed;
// with N concurrent clients each effectively runs N times slower — the
// behaviour behind Fig. 12's near-linear runtime growth with client count.
type Server struct {
	eng    *sim.Engine
	dev    Device
	rate   float64 // ops/sec aggregate
	active []*Job
	// lastUpdate is when `remaining` values were last current.
	lastUpdate sim.Time
	completion *sim.Event
	// Completed counts finished jobs.
	Completed uint64
}

// NewServer creates a processor-sharing server for dev, using its matching
// rate as the service rate.
func NewServer(eng *sim.Engine, dev Device) *Server {
	return &Server{eng: eng, dev: dev, rate: dev.MatchMACsPerSec}
}

// Device returns the server's underlying device model.
func (s *Server) Device() Device { return s.dev }

// ActiveJobs reports the number of jobs currently in service.
func (s *Server) ActiveJobs() int { return len(s.active) }

// Submit adds a job for processing. The job's Done callback fires when the
// job's work has been served.
func (s *Server) Submit(j *Job) {
	if j.Work <= 0 {
		// Degenerate job: complete immediately.
		s.Completed++
		if j.Done != nil {
			j.Done(0)
		}
		return
	}
	s.advance()
	j.remaining = j.Work
	j.started = s.eng.Now()
	s.active = append(s.active, j)
	s.reschedule()
}

// advance drains progress accrued since lastUpdate into each active job.
func (s *Server) advance() {
	now := s.eng.Now()
	if len(s.active) > 0 {
		elapsed := now.Sub(s.lastUpdate).Seconds()
		perJob := elapsed * s.rate / float64(len(s.active))
		for _, j := range s.active {
			j.remaining -= perJob
		}
	}
	s.lastUpdate = now
}

// reschedule computes the next completion among active jobs and arms a
// single event for it.
func (s *Server) reschedule() {
	if s.completion != nil {
		s.completion.Cancel()
		s.completion = nil
	}
	if len(s.active) == 0 {
		return
	}
	// Next to finish is the job with least remaining work; under equal
	// sharing it finishes after remaining / (rate/N).
	minIdx := 0
	for i, j := range s.active {
		if j.remaining < s.active[minIdx].remaining {
			minIdx = i
		}
	}
	j := s.active[minIdx]
	dt := j.remaining / (s.rate / float64(len(s.active)))
	if dt < 0 {
		dt = 0
	}
	// Round the wakeup up to the clock resolution; the epsilon below
	// absorbs the sub-nanosecond overshoot so completion is guaranteed.
	wake := time.Duration(math.Ceil(dt * 1e9))
	s.completion = s.eng.Schedule(wake, func() {
		s.advance()
		// Complete every job whose remaining work is (numerically) spent:
		// less than ~1 ns of service time or within float error of its
		// total work.
		eps := s.rate*1e-9 + 1e-9*j.Work
		kept := s.active[:0]
		var done []*Job
		for _, job := range s.active {
			if job.remaining <= eps {
				done = append(done, job)
			} else {
				kept = append(kept, job)
			}
		}
		s.active = kept
		for _, job := range done {
			s.Completed++
			if job.Done != nil {
				job.Done(s.eng.Now().Sub(job.started))
			}
		}
		s.reschedule()
	})
}

// FrameFeatures is the paper's measured average SURF feature count per
// frame at each evaluated resolution (Fig. 3 x-axis annotations).
var FrameFeatures = map[Resolution]float64{
	{320, 240}:   392.5,
	{480, 360}:   703.9,
	{720, 540}:   1224.5,
	{960, 720}:   1704.9,
	{1440, 1080}: 2641.2,
}

// Resolution is a frame size in pixels.
type Resolution struct {
	W, H int
}

// Pixels reports the pixel count.
func (r Resolution) Pixels() int { return r.W * r.H }

// String formats as WxH.
func (r Resolution) String() string { return fmt.Sprintf("%dx%d", r.W, r.H) }

// Features returns the expected SURF feature count for a frame at this
// resolution: the paper's measured table when available, otherwise a
// power-law interpolation features ≈ a * pixels^b fitted to that table.
func (r Resolution) Features() float64 {
	if f, ok := FrameFeatures[r]; ok {
		return f
	}
	// Fit through the extreme table points:
	// b = log(f2/f1)/log(p2/p1), a = f1 / p1^b.
	const (
		p1, f1 = 320 * 240, 392.5
		p2, f2 = 1440 * 1080, 2641.2
	)
	b := math.Log(f2/f1) / math.Log(float64(p2)/float64(p1))
	a := f1 / math.Pow(p1, b)
	return a * math.Pow(float64(r.Pixels()), b)
}

// EvalResolutions are the five resolutions of Fig. 3(a)/(b)/(h).
var EvalResolutions = []Resolution{
	{320, 240}, {480, 360}, {720, 540}, {960, 720}, {1440, 1080},
}

// AppResolutions are the three resolutions of the §7.3 application
// experiments (Fig. 11/12) and the end-to-end run (720x480).
var AppResolutions = []Resolution{
	{720, 480}, {960, 720}, {1280, 720},
}
