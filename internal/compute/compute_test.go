package compute

import (
	"math"
	"sort"
	"testing"
	"time"

	"acacia/internal/sim"
)

func TestCalibrationAnchors(t *testing.T) {
	// The paper's anchor: SURF on a 320x240 frame takes 2 s on the phone.
	got := OnePlusOne.SURFTime(320 * 240)
	if got != 2*time.Second {
		t.Errorf("phone SURF(320x240) = %v, want 2s", got)
	}
}

func TestSpeedupRatiosMatchPaper(t *testing.T) {
	pixels := 960 * 720
	phone := OnePlusOne.SURFTime(pixels).Seconds()
	cases := []struct {
		dev  Device
		want float64
	}{
		{I7x1, surfSpeedupI7x1},
		{I7x8, surfSpeedupI7x8},
		{GPU, surfSpeedupGPU},
	}
	for _, c := range cases {
		ratio := phone / c.dev.SURFTime(pixels).Seconds()
		if math.Abs(ratio-c.want)/c.want > 0.01 {
			t.Errorf("%s SURF speedup = %.1fx, want %vx", c.dev, ratio, c.want)
		}
	}
	macs := 1e9
	phoneMatch := OnePlusOne.MatchTime(macs).Seconds()
	matchCases := []struct {
		dev  Device
		want float64
	}{
		{I7x1, matchSpeedupI7x1},
		{I7x8, matchSpeedupI7x8},
		{GPU, matchSpeedupGPU},
	}
	for _, c := range matchCases {
		ratio := phoneMatch / c.dev.MatchTime(macs).Seconds()
		if math.Abs(ratio-c.want)/c.want > 0.01 {
			t.Errorf("%s match speedup = %.1fx, want %vx", c.dev, ratio, c.want)
		}
	}
}

func TestXeonFasterThanI7(t *testing.T) {
	if Xeon32.MatchMACsPerSec <= I7x8.MatchMACsPerSec {
		t.Error("Xeon(32) must out-match i7(8)")
	}
	if Xeon32.SURFPixelsPerSec <= I7x8.SURFPixelsPerSec {
		t.Error("Xeon(32) must out-SURF i7(8)")
	}
}

func TestJPEGTimesMatchPaperScale(t *testing.T) {
	// §7.3: JPEG-90 compression on the phone takes 53/38/23 ms for
	// 1280x720 / 960x720 / 720x480.
	cases := []struct {
		res    Resolution
		wantMS float64
	}{
		{Resolution{1280, 720}, 53},
		{Resolution{960, 720}, 38},
		{Resolution{720, 480}, 23},
	}
	for _, c := range cases {
		got := OnePlusOne.JPEGTime(c.res.Pixels()).Seconds() * 1000
		if math.Abs(got-c.wantMS)/c.wantMS > 0.15 {
			t.Errorf("phone JPEG %v = %.1f ms, want ≈%v", c.res, got, c.wantMS)
		}
	}
}

func TestFrameFeaturesTable(t *testing.T) {
	resolutions := make([]Resolution, 0, len(FrameFeatures))
	for res := range FrameFeatures {
		resolutions = append(resolutions, res)
	}
	sort.Slice(resolutions, func(i, j int) bool { return resolutions[i].Pixels() < resolutions[j].Pixels() })
	for _, res := range resolutions {
		if got, want := res.Features(), FrameFeatures[res]; got != want {
			t.Errorf("Features(%v) = %v, want table value %v", res, got, want)
		}
	}
}

func TestFrameFeaturesInterpolation(t *testing.T) {
	// Untabulated resolutions interpolate monotonically between neighbors.
	f720x480 := Resolution{720, 480}.Features()
	if f720x480 <= FrameFeatures[Resolution{480, 360}] || f720x480 >= FrameFeatures[Resolution{960, 720}] {
		t.Errorf("Features(720x480) = %v, want between 703.9 and 1704.9", f720x480)
	}
	f1280x720 := Resolution{1280, 720}.Features()
	if f1280x720 <= FrameFeatures[Resolution{960, 720}] || f1280x720 >= FrameFeatures[Resolution{1440, 1080}] {
		t.Errorf("Features(1280x720) = %v, want between 1704.9 and 2641.2", f1280x720)
	}
}

func TestFeaturesMonotoneInPixels(t *testing.T) {
	resolutions := []Resolution{
		{160, 120}, {320, 240}, {480, 360}, {640, 480}, {720, 480},
		{720, 540}, {960, 720}, {1280, 720}, {1280, 960}, {1440, 1080}, {1920, 1080},
	}
	prev := 0.0
	for _, r := range resolutions {
		f := r.Features()
		if f <= prev {
			t.Errorf("Features(%v) = %v not increasing", r, f)
		}
		prev = f
	}
}

func TestServerSingleJobRunsAtFullRate(t *testing.T) {
	eng := sim.NewEngine(1)
	srv := NewServer(eng, I7x8)
	var elapsed time.Duration
	work := I7x8.MatchMACsPerSec // exactly one second of work
	srv.Submit(&Job{Work: work, Done: func(e time.Duration) { elapsed = e }})
	eng.Run()
	if math.Abs(elapsed.Seconds()-1) > 1e-6 {
		t.Errorf("elapsed = %v, want 1s", elapsed)
	}
	if srv.Completed != 1 {
		t.Errorf("completed = %d", srv.Completed)
	}
}

func TestServerProcessorSharingDoublesRuntime(t *testing.T) {
	// Two equal jobs arriving together each take twice as long — the
	// Fig. 12 behaviour.
	eng := sim.NewEngine(1)
	srv := NewServer(eng, Xeon32)
	work := Xeon32.MatchMACsPerSec * 0.1 // 100 ms alone
	var times []time.Duration
	for i := 0; i < 2; i++ {
		srv.Submit(&Job{Work: work, Done: func(e time.Duration) { times = append(times, e) }})
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("completions = %d", len(times))
	}
	for _, e := range times {
		if math.Abs(e.Seconds()-0.2) > 1e-6 {
			t.Errorf("shared runtime = %v, want 200ms", e)
		}
	}
}

func TestServerNClientScaling(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		eng := sim.NewEngine(1)
		srv := NewServer(eng, I7x8)
		work := I7x8.MatchMACsPerSec * 0.05
		var maxElapsed time.Duration
		for i := 0; i < n; i++ {
			srv.Submit(&Job{Work: work, Done: func(e time.Duration) {
				if e > maxElapsed {
					maxElapsed = e
				}
			}})
		}
		eng.Run()
		want := 0.05 * float64(n)
		if math.Abs(maxElapsed.Seconds()-want) > 1e-6 {
			t.Errorf("n=%d: runtime %v, want %vs", n, maxElapsed, want)
		}
	}
}

func TestServerStaggeredArrivals(t *testing.T) {
	// Job A (200 ms of work) starts alone; B (100 ms) arrives at t=100ms.
	// A runs alone for 100 ms (100 ms of work done), then shares: both have
	// 100 ms of work left at half rate => both finish at t=300ms.
	eng := sim.NewEngine(1)
	srv := NewServer(eng, I7x1)
	rate := I7x1.MatchMACsPerSec
	var aDone, bDone sim.Time
	srv.Submit(&Job{Work: rate * 0.2, Done: func(time.Duration) { aDone = eng.Now() }})
	eng.Schedule(100*time.Millisecond, func() {
		srv.Submit(&Job{Work: rate * 0.1, Done: func(time.Duration) { bDone = eng.Now() }})
	})
	eng.Run()
	if math.Abs(aDone.Seconds()-0.3) > 1e-6 {
		t.Errorf("A done at %v, want 300ms", aDone)
	}
	if math.Abs(bDone.Seconds()-0.3) > 1e-6 {
		t.Errorf("B done at %v, want 300ms", bDone)
	}
}

func TestServerZeroWorkJob(t *testing.T) {
	eng := sim.NewEngine(1)
	srv := NewServer(eng, I7x8)
	done := false
	srv.Submit(&Job{Work: 0, Done: func(e time.Duration) {
		if e != 0 {
			t.Errorf("zero-work elapsed = %v", e)
		}
		done = true
	}})
	if !done {
		t.Error("zero-work job did not complete immediately")
	}
}

func TestDevicesList(t *testing.T) {
	ds := Devices()
	if len(ds) != 5 {
		t.Fatalf("devices = %d", len(ds))
	}
	if ds[0].Name != "One+" || ds[4].Name != "Xeon(32)" {
		t.Errorf("order: %v", ds)
	}
}

func TestMatchTimeScalesWithDBWork(t *testing.T) {
	// Fig. 3(h): runtime grows linearly with database size.
	one := I7x8.MatchTime(1e8)
	fifty := I7x8.MatchTime(50e8)
	ratio := fifty.Seconds() / one.Seconds()
	if math.Abs(ratio-50) > 0.01 {
		t.Errorf("DB scaling ratio = %v, want 50", ratio)
	}
}
