# ACACIA reproduction — common workflows.

GO ?= go

.PHONY: all build vet test race cover fmt-check bench results results-csv examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Trials run concurrently; the race detector guards the scheduler and the
# no-shared-mutable-state contract between trials.
race:
	$(GO) test -race ./...

# Coverage in atomic mode (trials run on multiple goroutines), with a
# per-package and total summary.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1


fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Regenerate every figure/table of the paper (quick mode).
results:
	$(GO) run ./cmd/acacia-sim -all

# Same, as CSV for plotting.
results-csv:
	$(GO) run ./cmd/acacia-sim -all -csv

bench:
	$(GO) test -bench=. -benchmem ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/localization
	$(GO) run ./examples/offload
	$(GO) run ./examples/mobility

# The artifacts the reproduction records.
test_output.txt:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench_output.txt:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt coverage.out
