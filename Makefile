# ACACIA reproduction — common workflows.

GO ?= go

.PHONY: all build vet vet-escape test race cover fmt-check bench bench-json bench-robustness bench-alloc bench-partition bench-scale bench-mobility alloc-gate results results-csv examples clean

all: build vet test

build:
	$(GO) build ./...

# go vet for generic mistakes, acacia-vet for the repo's own contracts:
# per-file rules (virtual time, seeded randomness, sorted map output,
# metric grammar, exec-only goroutines, hot-path allocation syntax) plus
# the interprocedural rules over the whole-program call graph (dettaint,
# hotpath-escape, partition-confine). See DESIGN.md §3d and §3i.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/acacia-vet ./...

# Escape gate alone: rebuilds the module with -gcflags='-m -m' and holds
# every //acacia:hotpath range to zero escape diagnostics (DESIGN.md §3i).
# Split out so CI runs it on each toolchain in the matrix — the compiler's
# escape output format changed between Go 1.22 and 1.24 and the parser
# must keep up with both.
vet-escape:
	$(GO) run ./cmd/acacia-vet -rules hotpath-escape ./...

test:
	$(GO) test ./...

# Trials run concurrently; the race detector guards the scheduler and the
# no-shared-mutable-state contract between trials.
race:
	$(GO) test -race ./...

# Coverage in atomic mode (trials run on multiple goroutines), with a
# per-package and total summary.
cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1


fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Regenerate every figure/table of the paper (quick mode).
results:
	$(GO) run ./cmd/acacia-sim -all

# Same, as CSV for plotting.
results-csv:
	$(GO) run ./cmd/acacia-sim -all -csv

bench:
	$(GO) test -bench=. -benchmem ./...

# bench_to_json runs `go test -bench=$(1)` and records every Benchmark*
# line as a JSON array in $(2) (name, iterations, ns/op, B/op, allocs/op).
# $(3) optionally narrows the package pattern (default ./..., which compiles
# every package's benchmarks — subset targets that live in one package pass
# it to skip the rest). A failed or benchmark-free run still writes valid
# JSON ([]) but exits nonzero, so downstream tooling never parses a
# half-written file.
define bench_to_json
	@if ! $(GO) test -bench='$(1)' -benchmem $(if $(3),$(3),./...) > bench_raw.tmp 2>&1; then \
		echo "[]" > $(2); \
		echo "bench-json: go test -bench failed; $(2) reset to []" >&2; \
		cat bench_raw.tmp >&2; rm -f bench_raw.tmp; exit 1; fi
	@awk ' \
		BEGIN { print "["; n = 0 } \
		$$1 ~ /^Benchmark/ && $$4 == "ns/op" { \
			if (n++) printf ",\n"; \
			bytes = ($$6 == "B/op") ? $$5 : "null"; \
			allocs = ($$8 == "allocs/op") ? $$7 : "null"; \
			printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
				$$1, $$2, $$3, bytes, allocs \
		} \
		END { print "\n]" }' bench_raw.tmp > $(2)
	@rm -f bench_raw.tmp
	@count=$$(grep -c '"name"' $(2) || true); \
	if [ "$$count" -eq 0 ]; then \
		echo "[]" > $(2); \
		echo "bench-json: no benchmarks in output; $(2) reset to []" >&2; \
		exit 1; fi; \
	echo "wrote $(2) ($$count benchmarks)"
endef

bench-json:
	$(call bench_to_json,.,BENCH_control.json)

# Robustness subset: the fault-injection and failover-recovery benchmarks.
bench-robustness:
	$(call bench_to_json,Failover|Fault,BENCH_robustness.json)

# Allocation subset: the BenchmarkAlloc* hot-path family (DESIGN.md §3f).
bench-alloc:
	$(call bench_to_json,^BenchmarkAlloc,BENCH_alloc.json)

# Partition subset: sequential vs windowed vs gang wall-time on the
# many-site scenario (DESIGN.md §3g). Single-core hosts see only the cache-
# locality share of the gain; the gang/sequential ratio reflects real
# speedup only when GOMAXPROCS spans the partitions.
bench-partition:
	$(call bench_to_json,^BenchmarkPartition,BENCH_partition.json,./internal/experiments)

# Metro-scale subset: the generated 12-site/1200-UE scenario under the
# three execution modes (cohort attach, capacity admission, per-site frame
# loops). Same single-core caveat as bench-partition.
bench-scale:
	$(call bench_to_json,^BenchmarkScale,BENCH_scale.json,./internal/experiments)

# Mobility subset: the cross-site walk trial (handover + MRS relocation +
# freeze/copy/resume state transfer) under the three execution modes.
# Same single-core caveat as bench-partition.
bench-mobility:
	$(call bench_to_json,^BenchmarkMobility,BENCH_mobility.json,./internal/experiments)

# Allocation-budget gate: re-measure and hold every BenchmarkAlloc* result
# against the committed ceilings in ALLOC_BUDGET.json. Fails CI when a hot
# path regresses past its budget.
alloc-gate: bench-alloc
	$(GO) run ./cmd/acacia-allocgate -bench BENCH_alloc.json -budget ALLOC_BUDGET.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retail
	$(GO) run ./examples/localization
	$(GO) run ./examples/offload
	$(GO) run ./examples/mobility

# The artifacts the reproduction records.
test_output.txt:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench_output.txt:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt coverage.out BENCH_control.json BENCH_robustness.json BENCH_alloc.json BENCH_partition.json BENCH_scale.json BENCH_mobility.json bench_raw.tmp
