// Mobility: a store spanning two LTE cells. The customer browses in the
// west cell, walks east, and the network hands the session over — SGW
// anchoring keeps her IP, the dedicated MEC bearer and the AR session
// alive, exactly the anchor role the paper's background assigns the SGW.
//
//	go run ./examples/mobility
//
// With -faults the walk also survives an edge-site outage: a fault plan
// crashes the serving edge site mid-session, GTP-U path supervision
// detects it, and the MRS moves the AR session to a second site.
//
//	go run ./examples/mobility -faults
package main

import (
	"flag"
	"fmt"
	"time"

	"acacia"
	"acacia/internal/geo"
)

func main() {
	faults := flag.Bool("faults", false, "crash the serving edge site mid-session and show the recovery")
	flag.Parse()

	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 7})
	east := tb.AddNeighborENB("enb-east")
	customer := tb.UEs[0]
	if *faults {
		tb.AddEdgeSite("edge-2")
		tb.EnableFailover(100*time.Millisecond, 2)
	}

	tb.MoveUE(customer, geo.Point{X: 15, Y: 12}) // west side
	if err := tb.Attach(customer); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(10 * time.Second)

	report := func(phase string) {
		fe := customer.Frontend
		sess := tb.EPC.Session(customer.UE.IMSI)
		fmt.Printf("%-22s serving=%-9s frames=%-4d matched=%-4d timeouts=%-2d bearers=%d\n",
			phase, sess.ENB.Name(), fe.Responses, fe.Found, fe.Timeouts, len(sess.Bearers))
	}
	report("west cell:")

	// Walk east; signal degrades, the network decides to hand over.
	tb.MoveUE(customer, geo.Point{X: 33, Y: 14})
	fmt.Println("\n-- walking east; eNB triggers S1 handover --")
	if err := tb.Handover(customer, east); err != nil {
		panic(err)
	}
	report("just after handover:")

	tb.Run(15 * time.Second)
	report("east cell:")

	if *faults {
		fmt.Println("\n-- edge-1 crashes; path supervision detects, MRS fails the session over --")
		if err := tb.Faults.Apply(acacia.FaultPlan{Name: "edge-outage", Events: []acacia.FaultEvent{
			{Kind: acacia.FaultSiteCrash, Target: "edge-1", At: time.Second},
		}}); err != nil {
			panic(err)
		}
		tb.Run(15 * time.Second)
		report("after failover:")
		if site := tb.MRS.Binding(customer.UE.Addr()); site != nil {
			fmt.Printf("serving edge site now: %s (failovers: %d)\n", site.Name, tb.MRS.Failovers)
		}
	}

	fe := customer.Frontend
	fmt.Printf("\nsession stats: total %.1f ms/frame (match %.1f, compute %.1f, network %.1f)\n",
		fe.Stats.Total.Mean(), fe.Stats.Match.Mean(), fe.Stats.Compute.Mean(), fe.Stats.Network.Mean())
	fmt.Printf("handovers completed: %d; UE IP unchanged: %v; MEC binding: %v\n",
		tb.EPC.MME.Handovers, customer.UE.Addr(), tb.MRS.Binding(customer.UE.Addr()) != nil)
}
