// Mobility: a store spanning two LTE cells, each with its own edge site.
// The customer browses in the west cell, then walks east at 1.4 m/s; the
// timed walker crosses the cell boundary, the network runs an S1 handover
// (SGW anchoring keeps her IP and the dedicated MEC bearer alive), the MRS
// re-anchors the MEC binding on the east cell's site, and the AR session's
// state — localization track plus the feature-DB slice around her — is
// frozen, shipped site-to-site, and resumed with a bounded continuity gap.
//
//	go run ./examples/mobility
//
// With -faults the walk also survives an edge-site outage: a fault plan
// crashes the now-serving east site mid-session, GTP-U path supervision
// detects it, and the MRS moves the AR session back to the west site.
//
//	go run ./examples/mobility -faults
package main

import (
	"flag"
	"fmt"
	"time"

	"acacia"
	"acacia/internal/epc"
	"acacia/internal/geo"
)

func main() {
	faults := flag.Bool("faults", false, "crash the serving edge site mid-session and show the recovery")
	flag.Parse()

	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 7})
	east := tb.AddCellENB("enb-east")
	site2 := tb.AddEdgeSite("edge-2")
	tb.BindSiteToENB(site2.Name, "enb-east")
	customer := tb.UEs[0]
	if *faults {
		tb.EnableFailover(100*time.Millisecond, 2)
	}

	start := geo.Point{X: 15, Y: 12} // west side
	tb.MoveUE(customer, start)
	if err := tb.Attach(customer); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(8 * time.Second)

	report := func(phase string) {
		fe := customer.Frontend
		sess := tb.EPC.Session(customer.UE.IMSI)
		site := "-"
		if s := tb.MRS.Binding(customer.UE.Addr()); s != nil {
			site = s.Name
		}
		fmt.Printf("%-22s serving=%-9s site=%-7s frames=%-4d matched=%-4d timeouts=%-2d bearers=%d\n",
			phase, sess.ENB.Name(), site, fe.Responses, fe.Found, fe.Timeouts,
			len(sess.OrderedBearers()))
	}
	report("west cell:")

	// Walk east across the midline: the precomputed boundary crossing
	// triggers the handover, which drags the MEC binding and the session
	// state along with it.
	walk := geo.Walker{
		Path:  geo.Path{Waypoints: []geo.Point{start, {X: 33, Y: 14}}},
		Speed: 1.4,
	}
	fmt.Println("\n-- walking east at 1.4 m/s; the boundary crossing hands the session over --")
	crossings := tb.StartWalk(customer, walk, geo.MidlineCell(21),
		[]*epc.ENB{tb.ENB, east}, 100*time.Millisecond,
		func(c geo.Crossing, err error) {
			fmt.Printf("crossing at %v (cell %d -> %d): handover err=%v\n",
				c.At.Round(time.Millisecond), c.From, c.To, err)
		})
	fmt.Printf("walk: %.0f m, %v, %d boundary crossing(s)\n",
		walk.Path.Length(), walk.Duration().Round(time.Second), len(crossings))
	tb.Run(walk.Duration() + 10*time.Second)
	report("east cell:")

	fe := customer.Frontend
	fmt.Printf("\nmigration: %d session(s) moved, %.0f KB state, transfer %.1f ms, relocations %d\n",
		fe.Migrations, float64(fe.MigratedBytes)/1024, fe.MigrateTransferMS, tb.MRS.Relocations)

	if *faults {
		fmt.Println("\n-- edge-2 crashes; path supervision detects, MRS fails the session over --")
		if err := tb.Faults.Apply(acacia.FaultPlan{Name: "edge-outage", Events: []acacia.FaultEvent{
			{Kind: acacia.FaultSiteCrash, Target: "edge-2", At: time.Second},
		}}); err != nil {
			panic(err)
		}
		tb.Run(15 * time.Second)
		report("after failover:")
		if site := tb.MRS.Binding(customer.UE.Addr()); site != nil {
			fmt.Printf("serving edge site now: %s (failovers: %d)\n", site.Name, tb.MRS.Failovers)
		}
	}

	fmt.Printf("\nsession stats: total %.1f ms/frame (match %.1f, compute %.1f, network %.1f)\n",
		fe.Stats.Total.Mean(), fe.Stats.Match.Mean(), fe.Stats.Compute.Mean(), fe.Stats.Network.Mean())
	fmt.Printf("handovers completed: %d; UE IP unchanged: %v; MEC binding: %v\n",
		tb.EPC.MME.Handovers, customer.UE.Addr(), tb.MRS.Binding(customer.UE.Addr()) != nil)
}
