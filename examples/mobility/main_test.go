package main

import (
	"testing"
	"time"

	"acacia"
	"acacia/internal/epc"
	"acacia/internal/geo"
)

// TestWalkerDrivenHandover runs the example's scenario — a walker-driven
// crossing between two cells with per-cell edge sites — and asserts its
// claims: exactly one handover, the MRS binding re-anchored on the east
// site, the session migrated, and no frames lost beyond the interruption
// window around the crossing.
func TestWalkerDrivenHandover(t *testing.T) {
	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 7, IdleTimeout: time.Hour})
	east := tb.AddCellENB("enb-east")
	site2 := tb.AddEdgeSite("edge-2")
	tb.BindSiteToENB(site2.Name, "enb-east")
	customer := tb.UEs[0]

	start := geo.Point{X: 15, Y: 12}
	tb.MoveUE(customer, start)
	if err := tb.Attach(customer); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		t.Fatalf("register: %v", err)
	}
	tb.Run(8 * time.Second)
	if n := customer.Frontend.Timeouts; n != 0 {
		t.Fatalf("%d frame timeouts before the walk", n)
	}

	walk := geo.Walker{
		Path:  geo.Path{Waypoints: []geo.Point{start, {X: 33, Y: 14}}},
		Speed: 1.4,
	}
	var hoErrs []error
	crossings := tb.StartWalk(customer, walk, geo.MidlineCell(21),
		[]*epc.ENB{tb.ENB, east}, 100*time.Millisecond,
		func(_ geo.Crossing, err error) { hoErrs = append(hoErrs, err) })
	if len(crossings) != 1 {
		t.Fatalf("crossings = %d, want 1", len(crossings))
	}
	tb.Run(walk.Duration() + 10*time.Second)

	if len(hoErrs) != 1 || hoErrs[0] != nil {
		t.Fatalf("handover completions = %v, want one success", hoErrs)
	}
	if got := tb.EPC.MME.Handovers; got != 1 {
		t.Fatalf("handovers = %d, want 1", got)
	}
	sess := tb.EPC.Session(customer.UE.IMSI)
	if sess == nil || sess.ENB != east {
		t.Fatal("session did not end on enb-east")
	}

	// The MRS binding ends on the east cell's site and the session moved.
	if site := tb.MRS.Binding(customer.UE.Addr()); site == nil || site.Name != site2.Name {
		t.Fatalf("final binding = %+v, want %s", site, site2.Name)
	}
	if customer.Frontend.Migrations != 1 || customer.Frontend.MigrationTimeouts != 0 {
		t.Fatalf("migrations = %d (timeouts %d), want 1 clean migration",
			customer.Frontend.Migrations, customer.Frontend.MigrationTimeouts)
	}

	// No frame loss beyond the interruption window: the only frame the
	// walk may cost is the one in flight when the relocation fires.
	if n := customer.Frontend.Timeouts; n > 1 {
		t.Fatalf("%d frames lost over the walk, want at most 1", n)
	}
	if customer.Frontend.Responses == 0 {
		t.Fatal("no frames served")
	}
}
