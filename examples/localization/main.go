// Localization: calibrate the per-environment path-loss model, walk the
// Fig. 6 trace to see why rxPower (not SNR) carries position information,
// then run the Fig. 9-style accuracy evaluation across landmark subsets.
//
//	go run ./examples/localization
package main

import (
	"fmt"
	"time"

	"acacia/internal/core"
	"acacia/internal/d2d"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/stats"
	"acacia/internal/trace"
)

func main() {
	// 1. One-time calibration: fit rxPower = alpha + beta*log10(d).
	fit := core.CalibrateFromChannel(d2d.DefaultPathLoss, nil)
	fmt.Printf("path-loss fit: rxPower = %.1f %+.1f*log10(d) dBm (residual %.2f dB)\n\n",
		fit.Alpha, fit.Beta, fit.Residual)

	// 2. The Fig. 6 walk: three landmarks in a hall.
	hall := geo.ThreeLandmarkFloor()
	samples := trace.Walk(hall, trace.WalkConfig{
		Path: geo.Fig6WalkPath(), Speed: 0.1, Period: 5 * time.Second, Seed: 6,
	})
	fmt.Println("walking past three landmarks (5 s discovery period):")
	fmt.Println("  landmark    samples  rxPower span (dB)  SNR span (dB)")
	for _, lm := range hall.Landmarks {
		var rx, snr stats.Sample
		for _, s := range samples {
			if s.Landmark == lm.Name {
				rx.Add(s.RxPower)
				snr.Add(s.SNR)
			}
		}
		fmt.Printf("  %-10s %8d %18.1f %14.1f\n",
			lm.Name, rx.N(), rx.Max()-rx.Min(), snr.Max()-snr.Min())
	}
	fmt.Println("  (rxPower swings tens of dB with distance; SNR saturates at the 25 dB decode span)")

	// 3. Fig. 9: retail floor, checkpoint campaign, accuracy vs landmarks.
	floor := geo.RetailFloor()
	readings := trace.Campaign(floor, 2016, 1)
	grouped := trace.ByCheckpoint(readings)
	fmt.Printf("\naccuracy over %d checkpoints:\n", len(floor.Checkpoints))
	fmt.Println("  landmarks   best(m)   mean(m)  worst(m)")
	for k := 3; k <= len(floor.Landmarks); k++ {
		var comboErr stats.Sample
		for _, combo := range localization.Combinations(len(floor.Landmarks), k) {
			use := map[string]bool{}
			for _, i := range combo {
				use[floor.Landmarks[i].Name] = true
			}
			var sum float64
			n := 0
			for _, cp := range floor.Checkpoints {
				var ms []localization.Measurement
				for _, r := range grouped[cp.Name] {
					if use[r.Landmark] {
						ms = append(ms, localization.Measurement{
							Landmark: floor.Landmark(r.Landmark).Pos,
							Distance: fit.Distance(r.RxPower),
						})
					}
				}
				if len(ms) < 3 {
					continue
				}
				if est, err := localization.Trilaterate(ms); err == nil {
					sum += floor.Bounds.Clamp(est).Dist(cp.Pos)
					n++
				}
			}
			if n > 0 {
				comboErr.Add(sum / float64(n))
			}
		}
		fmt.Printf("  %9d %9.2f %9.2f %9.2f\n", k, comboErr.Min(), comboErr.Mean(), comboErr.Max())
	}
	fmt.Println("\n(paper: ≈3 m mean error with all 7 landmarks — enough for subsection pruning)")
}
