// Quickstart: the smallest end-to-end ACACIA session.
//
// A single customer walks into the store, attaches to the LTE network,
// registers the retail CI application, and — once LTE-direct discovers a
// matching service — the device manager transparently sets up a dedicated
// bearer to the edge CI server and the AR session starts.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"acacia"
	"acacia/internal/geo"
)

func main() {
	// The zero config reproduces the paper's calibrated environment:
	// 24/40 Mbps radio, 15 ms core, 100 µs edge hops, retail floor with 7
	// LTE-direct landmarks and the 105-object geo-tagged AR database.
	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 1})
	customer := tb.UEs[0]

	// Stand in the electronics section, near landmark L4.
	tb.MoveUE(customer, geo.Point{X: 21, Y: 15})

	// Attach: always-on default bearer through the centralized gateways.
	if err := tb.Attach(customer); err != nil {
		panic(err)
	}
	fmt.Println("attached:", customer.UE.Addr())

	// Register the retail app with an interest in electronics. Everything
	// else — discovery, the MRS request, dedicated-bearer activation,
	// starting the AR session — happens on its own.
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		panic(err)
	}

	tb.Run(30 * time.Second)

	fe := customer.Frontend
	fmt.Printf("MEC connectivity: %v (CI server %v)\n",
		customer.DM.Connected(acacia.RetailServiceName), fe.Server())
	fmt.Printf("frames answered:  %d (matched %d)\n", fe.Responses, fe.Found)
	fmt.Printf("per-frame latency (ms): match=%.1f compute=%.1f network=%.1f total=%.1f\n",
		fe.Stats.Match.Mean(), fe.Stats.Compute.Mean(),
		fe.Stats.Network.Mean(), fe.Stats.Total.Mean())
	if est, ok := tb.Loc.Estimate(customer.Name); ok {
		fmt.Printf("localized at %v (true position %v)\n", est, fe.Pos())
	}
}
