// Retail: the paper's full engaged-retail scenario (§5.1).
//
// Sales staff publish their sections over LTE-direct. A customer interested
// in electronics walks the store's serpentine aisle; as she moves, the
// device manager keeps the AR session alive against the edge CI server,
// localization tracks her, and the AR back-end prunes its object database
// to the cells around her. The example prints a travelogue: per-checkpoint
// position estimate, search-space size and frame latency.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"time"

	"acacia"
	"acacia/internal/geo"
)

func main() {
	tb := acacia.NewTestbed(acacia.TestbedConfig{Seed: 42})
	customer := tb.UEs[0]
	floor := tb.Floor

	start := floor.Checkpoint("C10").Pos // enters near electronics
	tb.MoveUE(customer, start)
	if err := tb.Attach(customer); err != nil {
		panic(err)
	}
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		panic(err)
	}
	tb.Run(8 * time.Second) // discovery + dedicated bearer + session start

	fmt.Println("checkpoint  section       est-error(m)  candidates  frame-total(ms)")
	walk := []string{"C10", "C11", "C12", "C14", "C15", "C16", "C18", "C19"}
	for _, name := range walk {
		cp := floor.Checkpoint(name)
		tb.MoveUE(customer, cp.Pos)

		// Reset per-stop statistics by snapshotting counts.
		framesBefore := customer.Frontend.Responses
		totalBefore := customer.Frontend.Stats.Total.Mean() * float64(customer.Frontend.Stats.Total.N())
		candBefore := tb.EdgeBackend.CandidateStats.Mean() * float64(tb.EdgeBackend.CandidateStats.N())

		tb.Run(10 * time.Second) // browse this spot

		frames := customer.Frontend.Responses - framesBefore
		totalNow := customer.Frontend.Stats.Total.Mean() * float64(customer.Frontend.Stats.Total.N())
		candNow := tb.EdgeBackend.CandidateStats.Mean() * float64(tb.EdgeBackend.CandidateStats.N())
		var meanTotal, meanCand float64
		if frames > 0 {
			meanTotal = (totalNow - totalBefore) / float64(frames)
			meanCand = (candNow - candBefore) / float64(frames)
		}
		est, _ := tb.Loc.Estimate(customer.Name)
		fmt.Printf("%-11s %-13s %10.2f  %10.1f  %14.1f\n",
			name, floor.SectionAt(cp.Pos), est.Dist(cp.Pos), meanCand, meanTotal)
	}

	fe := customer.Frontend
	fmt.Printf("\nsession: %d frames, %d matched, mean total %.1f ms (match %.1f, compute %.1f, network %.1f)\n",
		fe.Responses, fe.Found, fe.Stats.Total.Mean(),
		fe.Stats.Match.Mean(), fe.Stats.Compute.Mean(), fe.Stats.Network.Mean())
	fmt.Printf("edge back-end served %d frames over %d-object database, mean search %0.f objects\n",
		tb.EdgeBackend.Frames, tb.DB.Len(), tb.EdgeBackend.CandidateStats.Mean())

	// Leaving the store: the app unregisters and the dedicated bearer goes
	// away, returning the UE to a single always-on default bearer.
	if err := customer.DM.Unregister(acacia.RetailServiceName); err != nil {
		panic(err)
	}
	tb.Run(2 * time.Second)
	sess := tb.EPC.Session(customer.UE.IMSI)
	fmt.Printf("after checkout: %d dedicated bearers remain\n", len(sess.DedicatedBearers()))
	_ = geo.Point{}
}
