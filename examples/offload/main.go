// Offload: the paper's §4 motivation, interactively. For each device and
// frame resolution, print where the AR pipeline's time goes when run
// locally versus offloaded, and what the offload decision should be.
//
//	go run ./examples/offload
package main

import (
	"fmt"

	"acacia/internal/compute"
	"acacia/internal/media"
)

func main() {
	resolutions := compute.EvalResolutions
	devices := compute.Devices()

	fmt.Println("SURF detect+describe runtime (ms) — Fig. 3(a)'s axes:")
	fmt.Printf("%-11s", "resolution")
	for _, d := range devices {
		fmt.Printf("%12s", d.Name)
	}
	fmt.Println()
	for _, res := range resolutions {
		fmt.Printf("%-11s", res.String())
		for _, d := range devices {
			fmt.Printf("%12.1f", d.SURFTime(res.Pixels()).Seconds()*1000)
		}
		fmt.Println()
	}

	// Offload decision at 720x480 over the paper's edge (15 ms RTT,
	// 24 Mbps uplink): local compute vs upload + remote compute.
	res := compute.Resolution{W: 720, H: 480}
	frameBits := float64(media.AppFrameBytes(res) * 8)
	const (
		uplinkBps = 24e6
		edgeRTTms = 15.0
	)
	phone := compute.OnePlusOne
	local := phone.SURFTime(res.Pixels()).Seconds() * 1000 // plus matching, worse
	fmt.Printf("\noffload decision at %s (JPEG-90 frame %.0f KB, %d Mbps uplink, %.0f ms edge RTT):\n",
		res, float64(media.AppFrameBytes(res))/1024, int(uplinkBps/1e6), edgeRTTms)
	fmt.Printf("  stay local (One+):    SURF alone %.0f ms — hopeless for tens-of-ms budgets\n", local)
	for _, d := range []compute.Device{compute.I7x1, compute.I7x8, compute.GPU, compute.Xeon32} {
		remote := phone.JPEGTime(res.Pixels()).Seconds()*1000 + // compress
			frameBits/uplinkBps*1000 + edgeRTTms + // move the frame
			d.JPEGTime(res.Pixels()).Seconds()*1000 + // decode
			d.SURFTime(res.Pixels()).Seconds()*1000 // extract
		fmt.Printf("  offload to %-9s compress+upload+SURF = %.1f ms\n", d.Name+":", remote)
	}
	fmt.Println("\nmatching cost against N objects on the eight-core i7 — Fig. 3(h)'s shape:")
	for _, n := range []int{1, 5, 10, 25, 50, 105} {
		macs := res.Features() * 200 * 64 * 2 * float64(n)
		fmt.Printf("  %3d objects: %7.1f ms\n", n, compute.I7x8.MatchTime(macs).Seconds()*1000)
	}
	fmt.Println("pruning the database (ACACIA's context) is what keeps matching inside the budget.")
}
