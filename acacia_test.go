package acacia

import (
	"strings"
	"testing"
	"time"

	"acacia/internal/geo"
)

func TestPublicQuickstartFlow(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Seed: 99, IdleTimeout: time.Hour})
	customer := tb.UEs[0]
	tb.MoveUE(customer, geo.Point{X: 21, Y: 15})
	if err := tb.Attach(customer); err != nil {
		t.Fatal(err)
	}
	if err := tb.StartRetailApp(customer, "electronics"); err != nil {
		t.Fatal(err)
	}
	tb.Run(15 * time.Second)

	if !customer.DM.Connected(RetailServiceName) {
		t.Fatal("no MEC connectivity")
	}
	if customer.Frontend.Responses == 0 {
		t.Fatal("no AR responses")
	}
	st := customer.Frontend.Stats
	if st.Total.Mean() <= 0 || st.Total.Mean() > 1000 {
		t.Errorf("total latency = %.1f ms", st.Total.Mean())
	}
	// The headline property: edge+pruning total stays in the low hundreds
	// of ms, with match far below the 502 ms Naive search.
	if st.Match.Mean() >= 300 {
		t.Errorf("match latency = %.1f ms, pruning not effective", st.Match.Mean())
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("experiments = %d", len(ids))
	}
	if ids[0] != "3a" || ids[len(ids)-1] != "ablation-index" {
		t.Errorf("presentation order: first=%s last=%s", ids[0], ids[len(ids)-1])
	}
	for _, id := range ids {
		if ExperimentTitle(id) == "" {
			t.Errorf("no title for %s", id)
		}
	}
	r, err := RunExperiment("3e", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "1920x1080") {
		t.Error("experiment output missing expected row")
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPublicSchemeConstants(t *testing.T) {
	if SchemeACACIA.String() != "ACACIA" || SchemeNaive.String() != "Naive" || SchemeRxPower.String() != "rxPower" {
		t.Error("scheme re-exports broken")
	}
}
