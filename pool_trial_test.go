package acacia

// Cross-trial pool-isolation tests. The packet and event free-lists hang
// off the Network and Engine respectively — never off package globals — so
// concurrent trials recycle only their own memory. These tests run real
// trials concurrently through the exec worker pool and fail under the
// race detector, or on any byte-level output divergence, if a pool ever
// leaks across trials.

import (
	"fmt"
	"testing"
	"time"

	"acacia/internal/exec"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
)

// canaryTrial runs one seeded trial with heavy pool churn: a two-node
// network exchanging pooled packets, each stamped with the trial's marker
// TEID while owned and verified zeroed on re-acquisition. It returns a
// deterministic summary of the trial's outcome.
func canaryTrial(t *testing.T, seed uint64, marker uint32) string {
	eng := sim.NewEngine(seed)
	nw := netsim.New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	ha := netsim.NewHost(na)
	netsim.NewSink(netsim.NewHost(nb), 9000)
	nw.ConnectSymmetric(na, nb, netsim.LinkConfig{BitsPerSecond: 1e8, Propagation: time.Millisecond})

	var received uint64
	for i := 0; i < 200; i++ {
		// Mutate-after-release canary: acquire a pooled packet, stamp the
		// trial marker, and release it. If another trial's pool ever handed
		// us its packet (or ours leaked out), the zero-on-release invariant
		// breaks visibly here or the race detector fires.
		p := nw.NewPacket()
		if p.TEID != 0 || p.Size != 0 {
			t.Errorf("trial %d: pooled packet arrived dirty: TEID=%d Size=%d", seed, p.TEID, p.Size)
		}
		p.TEID = marker
		nw.Release(p)

		size := 200 + eng.RNG().Intn(1200)
		ha.Send(pkt.AddrFrom(10, 0, 0, 2), 30000, 9000, pkt.ProtoUDP, size, nil)
		eng.Run()
		received++
	}
	return fmt.Sprintf("seed=%d events=%d now=%v sent=%d", seed, eng.Processed(), eng.Now(), received)
}

// TestPoolNoCrossTrialAliasing runs many canary trials concurrently, each
// with a distinct marker, and checks every trial's output is byte-identical
// to the same trial run alone: engine-owned pools make pooling invisible
// to the sequential-vs-parallel contract.
func TestPoolNoCrossTrialAliasing(t *testing.T) {
	const trials = 8
	solo := make([]string, trials)
	for i := 0; i < trials; i++ {
		solo[i] = canaryTrial(t, uint64(i+1), uint32(0x1000+i))
	}

	tasks := make([]exec.Task[string], trials)
	for i := 0; i < trials; i++ {
		i := i
		tasks[i] = exec.Task[string]{
			Key: fmt.Sprintf("canary-%d", i+1),
			Run: func() (string, error) {
				return canaryTrial(t, uint64(i+1), uint32(0x1000+i)), nil
			},
		}
	}
	outs := exec.Run(trials, tasks)

	for i := 0; i < trials; i++ {
		if outs[i].Err != nil {
			t.Errorf("trial %d failed: %v", i+1, outs[i].Err)
			continue
		}
		if outs[i].Value != solo[i] {
			t.Errorf("trial %d diverged under parallel pooling:\nsolo:     %s\nparallel: %s", i+1, solo[i], outs[i].Value)
		}
	}
}

// TestParallelAttachByteIdentity runs full testbed attach/detach cycles —
// the heaviest user of the packet, event, frame and transaction pools —
// concurrently and sequentially, and requires identical telemetry output.
func TestParallelAttachByteIdentity(t *testing.T) {
	run := func(seed uint64) string {
		tb := NewTestbed(TestbedConfig{Seed: seed})
		ue := tb.UEs[0]
		for i := 0; i < 3; i++ {
			if err := tb.Attach(ue); err != nil {
				t.Errorf("seed %d attach %d: %v", seed, i, err)
				return ""
			}
			done := false
			if err := ue.UE.Detach(func() { done = true }); err != nil {
				t.Errorf("seed %d detach %d: %v", seed, i, err)
				return ""
			}
			tb.Run(time.Second)
			if !done {
				t.Errorf("seed %d: detach %d did not complete", seed, i)
				return ""
			}
		}
		return tb.Eng.Metrics().Snapshot().String()
	}

	const trials = 4
	solo := make([]string, trials)
	for i := 0; i < trials; i++ {
		solo[i] = run(uint64(i + 1))
	}
	tasks := make([]exec.Task[string], trials)
	for i := 0; i < trials; i++ {
		i := i
		tasks[i] = exec.Task[string]{
			Key: fmt.Sprintf("attach-%d", i+1),
			Run: func() (string, error) { return run(uint64(i + 1)), nil },
		}
	}
	outs := exec.Run(trials, tasks)
	for i := 0; i < trials; i++ {
		if solo[i] == "" {
			continue // already failed above
		}
		if outs[i].Err != nil {
			t.Errorf("attach trial seed %d failed: %v", i+1, outs[i].Err)
			continue
		}
		if outs[i].Value != solo[i] {
			t.Errorf("attach trial seed %d not byte-identical under concurrency", i+1)
		}
	}
}
