package acacia

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per experiment id; the rows/series print under
// -v via b.Logf) and micro-benchmarks the real computational kernels the
// simulation is built on: wire codecs, TFT classification, flow-table
// processing, descriptor matching, trilateration, and the DCT codec.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig13 -v     # include the regenerated tables

import (
	"fmt"
	"testing"
	"time"

	"acacia/internal/compute"
	"acacia/internal/fault"
	"acacia/internal/geo"
	"acacia/internal/localization"
	"acacia/internal/media"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/vision"
)

// benchExperiment runs one experiment per iteration and logs its tables.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(id, ExperimentOptions{Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", r)
		}
	}
}

// benchRunAll sweeps every experiment per iteration at a given trial
// concurrency, so the sequential and parallel schedules can be compared.
func benchRunAll(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		results, err := RunAllExperiments(ExperimentOptions{Seed: uint64(i) + 1, Parallel: parallel})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B)   { benchRunAll(b, 0) }

// One benchmark per figure/table of the evaluation.

func BenchmarkFig3aSURFRuntime(b *testing.B)      { benchExperiment(b, "3a") }
func BenchmarkFig3bMatchRuntime(b *testing.B)     { benchExperiment(b, "3b") }
func BenchmarkFig3cLTERTT(b *testing.B)           { benchExperiment(b, "3c") }
func BenchmarkFig3dULBandwidth(b *testing.B)      { benchExperiment(b, "3d") }
func BenchmarkFig3ePreviewFPS(b *testing.B)       { benchExperiment(b, "3e") }
func BenchmarkFig3fUploadFPS(b *testing.B)        { benchExperiment(b, "3f") }
func BenchmarkFig3gCompetingTraffic(b *testing.B) { benchExperiment(b, "3g") }
func BenchmarkFig3hDBSize(b *testing.B)           { benchExperiment(b, "3h") }
func BenchmarkTableControlOverhead(b *testing.B)  { benchExperiment(b, "overhead") }
func BenchmarkFig6DiscoveryTrace(b *testing.B)    { benchExperiment(b, "6") }
func BenchmarkFig8DataPlane(b *testing.B)         { benchExperiment(b, "8") }
func BenchmarkFig9Localization(b *testing.B)      { benchExperiment(b, "9") }
func BenchmarkFig10aQCIRTT(b *testing.B)          { benchExperiment(b, "10a") }
func BenchmarkFig10bIsolation(b *testing.B)       { benchExperiment(b, "10b") }
func BenchmarkTableCompression(b *testing.B)      { benchExperiment(b, "compression") }
func BenchmarkFig11aSearchSpace(b *testing.B)     { benchExperiment(b, "11a") }
func BenchmarkFig11bMatchCDF(b *testing.B)        { benchExperiment(b, "11b") }
func BenchmarkFig12MultiClient(b *testing.B)      { benchExperiment(b, "12") }
func BenchmarkFig13EndToEnd(b *testing.B)         { benchExperiment(b, "13") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationFastPath(b *testing.B)       { benchExperiment(b, "ablation-fastpath") }
func BenchmarkAblationBearerStrategy(b *testing.B) { benchExperiment(b, "ablation-bearer") }
func BenchmarkAblationPipelineStages(b *testing.B) { benchExperiment(b, "ablation-stages") }
func BenchmarkAblationPruneRadius(b *testing.B)    { benchExperiment(b, "ablation-radius") }
func BenchmarkAblationTrilateration(b *testing.B)  { benchExperiment(b, "ablation-solver") }
func BenchmarkAblationQCIPriority(b *testing.B)    { benchExperiment(b, "ablation-qci") }
func BenchmarkAblationLSHIndex(b *testing.B)       { benchExperiment(b, "ablation-index") }

// --- micro-benchmarks of the real kernels ---

func BenchmarkGTPUEncapDecap(b *testing.B) {
	src, dst := pkt.AddrFrom(10, 0, 0, 1), pkt.AddrFrom(10, 0, 0, 2)
	inner := make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outer := pkt.EncapsulateGPDU(src, dst, 0xbeef, len(inner))
		full := append(outer, inner...)
		if _, _, err := pkt.DecapsulateGPDU(full); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGTPv2CreateBearerRoundTrip(b *testing.B) {
	tft := pkt.DedicatedBearerTFT(pkt.AddrFrom(10, 3, 0, 10))
	msg := &pkt.GTPv2Msg{
		Type: pkt.GTPv2CreateBearerRequest, Seq: 7,
		Bearers: []pkt.BearerContext{{
			EBI: 6, TFT: &tft, QoS: &pkt.BearerQoS{QCI: 5, ARP: 2},
			FTEIDs: []pkt.FTEID{{IfaceType: pkt.FTEIDIfaceS1USGW, TEID: 1, Addr: pkt.AddrFrom(10, 3, 0, 1)}},
		}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := msg.Encode(nil)
		var out pkt.GTPv2Msg
		if _, err := out.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTFTClassification(b *testing.B) {
	tft := pkt.DedicatedBearerTFT(pkt.AddrFrom(10, 3, 0, 10))
	flows := make([]pkt.FiveTuple, 16)
	for i := range flows {
		flows[i] = pkt.FiveTuple{
			Src: pkt.AddrFrom(172, 16, 0, 2), Dst: pkt.AddrFrom(10, 3, 0, byte(i)),
			SrcPort: uint16(40000 + i), DstPort: 7000, Proto: pkt.ProtoTCP,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tft.MatchUplink(flows[i%len(flows)], 0)
	}
}

func BenchmarkOpenFlowFlowModEncode(b *testing.B) {
	msg := &pkt.OFMsg{
		Type: pkt.OFFlowMod, Command: pkt.FlowModAdd, Priority: 100, Cookie: 1,
		Match: pkt.Match{TunnelID: pkt.U64(101), IPv4Dst: pkt.AddrPtr(pkt.AddrFrom(172, 16, 0, 2))},
		Actions: []pkt.Action{
			{Type: pkt.ActionSetTunnel, TunnelID: 201, TunnelDst: pkt.AddrFrom(10, 3, 0, 2)},
			{Type: pkt.ActionOutput, Port: 1},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = msg.Encode(nil)
	}
}

func BenchmarkDescriptorKNNMatch(b *testing.B) {
	obj := vision.GenerateObjectFeatures(1, 200)
	frame := vision.GenerateFrame(obj, vision.DefaultFrameParams(128), sim.NewRNG(2))
	m := vision.NewMatcher(vision.MatcherConfig{}, sim.NewRNG(3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := m.Match(frame, obj)
		if !res.Matched {
			b.Fatal("match failed")
		}
	}
}

func BenchmarkDBSearchPruned(b *testing.B) {
	floor := geo.RetailFloor()
	db := vision.BuildRetailDB(floor, 64)
	target := db.Objects[17]
	frame := vision.GenerateFrame(target.Features, vision.DefaultFrameParams(96), sim.NewRNG(4))
	m := vision.NewMatcher(vision.MatcherConfig{}, sim.NewRNG(5))
	cells := []int{target.Subsection}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if res := db.Search(frame, cells, m); res.Best != target {
			b.Fatal("wrong object")
		}
	}
}

func BenchmarkTrilateration(b *testing.B) {
	landmarks := []geo.Point{{X: 3, Y: 5}, {X: 9, Y: 25}, {X: 15, Y: 5}, {X: 21, Y: 15}, {X: 27, Y: 25}, {X: 33, Y: 5}, {X: 39, Y: 20}}
	truth := geo.Point{X: 21, Y: 15}
	ms := make([]localization.Measurement, len(landmarks))
	for i, l := range landmarks {
		ms[i] = localization.Measurement{Landmark: l, Distance: truth.Dist(l) * 1.1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := localization.Trilaterate(ms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCTCompress(b *testing.B) {
	frame := media.SyntheticFrame(320, 240, 9)
	b.SetBytes(int64(len(frame.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := media.Compress(frame, 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEngineScheduling(b *testing.B) {
	eng := sim.NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, func() {})
		if i%1024 == 1023 {
			eng.Run()
		}
	}
	eng.Run()
}

func BenchmarkTestbedAttach(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := NewTestbed(TestbedConfig{Seed: uint64(i) + 1})
		if err := tb.Attach(tb.UEs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailoverRecovery runs the full MEC recovery pipeline once per
// iteration: establish the AR session, crash the serving edge site, and
// wait for the session to resume on the survivor.
func BenchmarkFailoverRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := NewTestbed(TestbedConfig{Seed: uint64(i) + 1, IdleTimeout: time.Hour})
		tb.AddEdgeSite("edge-2")
		tb.EnableFailover(100*time.Millisecond, 2)
		ue := tb.UEs[0]
		if err := tb.Attach(ue); err != nil {
			b.Fatal(err)
		}
		if err := tb.StartRetailApp(ue, "electronics"); err != nil {
			b.Fatal(err)
		}
		tb.Run(5 * time.Second)
		if err := tb.Faults.Apply(FaultPlan{Name: "bench", Events: []FaultEvent{
			{Kind: FaultSiteCrash, Target: "edge-1", At: time.Second},
		}}); err != nil {
			b.Fatal(err)
		}
		tb.Run(10 * time.Second)
		if !ue.DM.Connected(RetailServiceName) {
			b.Fatal("session did not recover")
		}
	}
}

// BenchmarkFaultPlanApply measures the injector machinery itself: a chain
// of links absorbing a 256-event schedule of down windows.
func BenchmarkFaultPlanApply(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(uint64(i) + 1)
		nw := netsim.New(eng)
		in := fault.NewInjector(eng)
		prev := nw.AddNode("n0", pkt.AddrFrom(10, 0, 0, 1))
		for j := 1; j <= 8; j++ {
			n := nw.AddNode(fmt.Sprintf("n%d", j), pkt.AddrFrom(10, 0, 0, byte(1+j)))
			l := nw.ConnectSymmetric(prev, n, netsim.LinkConfig{Propagation: time.Millisecond})
			in.RegisterLink(fmt.Sprintf("l%d", j), l)
			prev = n
		}
		evs := make([]fault.Event, 0, 256)
		for j := 0; j < 256; j++ {
			evs = append(evs, fault.Event{
				Kind: fault.LinkDown, Target: fmt.Sprintf("l%d", 1+j%8),
				At:       time.Duration(j) * 10 * time.Millisecond,
				Duration: 5 * time.Millisecond,
			})
		}
		if err := in.Apply(fault.Plan{Name: "bench", Events: evs}); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

func BenchmarkDeviceModelTable(b *testing.B) {
	// Sanity metric surface: device model queries are trivially cheap; the
	// benchmark exists so the calibration table appears in bench output.
	if b.N > 0 {
		var rows string
		for _, d := range compute.Devices() {
			rows += fmt.Sprintf("%s surf=%v match=%v\n",
				d.Name, d.SURFTime(720*480), d.MatchTime(1e9))
		}
		b.Logf("\n%s", rows)
	}
	for i := 0; i < b.N; i++ {
		_ = compute.I7x8.MatchTime(1e9)
	}
}
