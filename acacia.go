// Package acacia is the public face of the ACACIA reproduction: a
// context-aware mobile edge computing (MEC) framework for continuous
// interactive applications over LTE networks, after Cho et al., "ACACIA:
// Context-aware Edge Computing for Continuous Interactive Applications over
// Mobile Networks" (CoNEXT 2016).
//
// The package re-exports the simulation testbed, the ACACIA service
// components (device manager, MEC registration server, localization
// manager, AR application pair) and the experiment harness that regenerates
// every figure and table of the paper's evaluation. The heavy lifting lives
// in the internal packages:
//
//	internal/sim           deterministic discrete-event engine
//	internal/netsim        links, queues, routers, hosts, transports
//	internal/pkt           GTP-U/GTPv2-C/S1AP/OpenFlow/TFT wire encodings
//	internal/epc           UE, eNodeB, MME, HSS, PCRF, split gateways
//	internal/sdn           OVS-style GW-U switches + OpenFlow controller
//	internal/d2d           LTE-direct proximity discovery + radio channel
//	internal/localization  path-loss regression + trilateration
//	internal/vision        SURF-style features, matcher, geo-tagged DB
//	internal/compute       calibrated device models + PS compute server
//	internal/media         camera, compression models, block-DCT codec
//	internal/core          ACACIA itself + the wired testbed
//	internal/experiments   per-figure experiment runners
//
// Quick start:
//
//	tb := acacia.NewTestbed(acacia.TestbedConfig{})
//	ue := tb.UEs[0]
//	if err := tb.Attach(ue); err != nil { ... }
//	if err := tb.StartRetailApp(ue, "electronics"); err != nil { ... }
//	tb.Run(30 * time.Second)
//	fmt.Println(ue.Frontend.Stats.Total.Summarize())
package acacia

import (
	"acacia/internal/core"
	"acacia/internal/experiments"
	"acacia/internal/fault"
	"acacia/internal/telemetry"
)

// Testbed is the fully wired ACACIA environment: UEs with LTE-direct
// radios behind an eNodeB, a split EPC with central and edge gateway user
// planes, cloud and edge AR servers, the MRS, and the retail-store floor
// with its landmark publishers.
type Testbed = core.Testbed

// TestbedConfig parameterizes NewTestbed; the zero value selects the
// calibrated defaults matching the paper's environment.
type TestbedConfig = core.TestbedConfig

// UEBundle groups one customer device: its UE (EPC side), LTE-direct
// device, ACACIA device manager and AR front-end.
type UEBundle = core.UEBundle

// Scheme selects the AR back-end's search-space strategy.
type Scheme = core.Scheme

// Search-space schemes (§7.3): the full system, the coarse rxPower
// baseline, and the unpruned Naive baseline.
const (
	SchemeACACIA  = core.SchemeACACIA
	SchemeRxPower = core.SchemeRxPower
	SchemeNaive   = core.SchemeNaive
)

// DeviceManager is the on-device ACACIA daemon.
type DeviceManager = core.DeviceManager

// MRS is the MEC registration server (the 3GPP application function that
// converts connectivity requests into dedicated-bearer activations).
type MRS = core.MRS

// ServiceInfo describes a CI application's interest registration.
type ServiceInfo = core.ServiceInfo

// CIApp is the callback interface CI applications implement.
type CIApp = core.CIApp

// ARFrontend and ARBackend are the AR application pair.
type (
	ARFrontend = core.ARFrontend
	ARBackend  = core.ARBackend
)

// RetailServiceName is the LTE-direct service of the built-in retail
// deployment.
const RetailServiceName = core.RetailServiceName

// NewTestbed builds the standard topology. See core.TestbedConfig for every
// knob; the zero value reproduces the paper's calibrated environment.
func NewTestbed(cfg TestbedConfig) *Testbed { return core.NewTestbed(cfg) }

// EdgeSiteBundle groups one edge site's pieces (user-plane switches, CI
// server, AR backend). Testbed.AddEdgeSite deploys additional sites as
// failover candidates; Testbed.EnableFailover arms GTP-U path supervision
// and MRS-driven recovery across all of them.
type EdgeSiteBundle = core.SiteBundle

// FaultInjector applies deterministic fault plans to a testbed's
// registered links, nodes and edge sites (Testbed.Faults).
type FaultInjector = fault.Injector

// FaultPlan is a declarative, virtual-clock-driven fault schedule.
type FaultPlan = fault.Plan

// FaultEvent is one scheduled fault of a FaultPlan.
type FaultEvent = fault.Event

// Fault kinds a FaultPlan can schedule.
const (
	FaultLinkDown  = fault.LinkDown
	FaultLinkLoss  = fault.LinkLoss
	FaultNodeCrash = fault.NodeCrash
	FaultSiteCrash = fault.SiteCrash
)

// ExperimentResult is one experiment's rendered tables and notes.
type ExperimentResult = experiments.Result

// MetricsSnapshot is a deterministic point-in-time view of an engine's
// telemetry registry: metrics sorted by scoped name plus the timeline of
// emitted events in virtual-time order. ExperimentResult.Metrics holds the
// per-trial snapshots merged in trial declaration order.
type MetricsSnapshot = telemetry.Snapshot

// MergeMetrics combines snapshots into one fleet-wide view: counters and
// gauges sum, histogram bounds combine, and timelines interleave by virtual
// time. Nil snapshots are skipped.
func MergeMetrics(snaps ...*MetricsSnapshot) *MetricsSnapshot {
	return telemetry.MergeSnapshots(snaps...)
}

// ExperimentOptions tunes experiment execution: Full selects
// publication-length runs, Seed/SeedSet pick the base simulation seed, and
// Parallel bounds how many trials run concurrently (output is
// byte-identical at every setting).
type ExperimentOptions = experiments.Options

// ExperimentIDs lists every reproducible figure/table id in presentation
// order ("3a".."3h", "overhead", "6", "8", "9", "10a", "10b",
// "compression", "11a", "11b", "12", "13", and the ablations).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the human-readable title for an experiment id.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment regenerates one figure or table by id.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// RunAllExperiments regenerates every figure and table in order.
// Experiments whose trials failed are omitted from the results and their
// errors joined into err; the returned results are still valid.
func RunAllExperiments(opts ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.RunAll(opts)
}

// ScaleConfig shapes the generated metro-scale scenario: the site/eNB grid,
// the UE population and its arrival profile, per-site admission capacity,
// the frame-loop timing, and the execution mode (Workers, matching
// -intra-parallel semantics).
type ScaleConfig = experiments.ScaleConfig

// DefaultScaleConfig returns the preset metro shapes: quick (test-sized)
// or full (the >= 10,000 UE / >= 12 site acceptance scenario).
func DefaultScaleConfig(full bool) ScaleConfig { return experiments.DefaultScaleConfig(full) }

// RunScaleScenario runs the metro-scale scenario once with the given shape
// (the acacia-sim -scale entry point). Zero-valued config fields take the
// quick-shape defaults.
func RunScaleScenario(seed uint64, cfg ScaleConfig) *ExperimentResult {
	return experiments.RunScaleScenario(seed, cfg)
}
