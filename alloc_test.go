package acacia

// Allocation benchmarks and zero-alloc contract tests for the hot paths
// covered by DESIGN.md §3f. The BenchmarkAlloc* family is what
// `make bench-alloc` records into BENCH_alloc.json, and what
// cmd/acacia-allocgate holds against the budgets in ALLOC_BUDGET.json.
// The TestZeroAlloc* tests pin the strict 0 allocs/op contracts directly
// with testing.AllocsPerRun so a regression fails `go test` even without
// the benchmark gate.

import (
	"testing"
	"time"

	"acacia/internal/epc"
	"acacia/internal/netsim"
	"acacia/internal/pkt"
	"acacia/internal/sim"
	"acacia/internal/telemetry"
)

// BenchmarkAllocGTPUEncap measures the zero-alloc encap path: outer
// IPv4+UDP+GTP-U headers appended to a reused scratch buffer.
func BenchmarkAllocGTPUEncap(b *testing.B) {
	src, dst := pkt.AddrFrom(10, 0, 0, 1), pkt.AddrFrom(10, 0, 0, 2)
	buf := make([]byte, 0, pkt.GTPUOverhead)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = pkt.AppendGPDU(buf[:0], src, dst, 0xbeef, 1400)
	}
	if len(buf) != pkt.GTPUOverhead {
		b.Fatalf("encap length %d, want %d", len(buf), pkt.GTPUOverhead)
	}
}

// BenchmarkAllocGTPUEncapDecap round-trips a full tunneled packet through
// encap and decap with every buffer reused across iterations.
func BenchmarkAllocGTPUEncapDecap(b *testing.B) {
	src, dst := pkt.AddrFrom(10, 0, 0, 1), pkt.AddrFrom(10, 0, 0, 2)
	inner := make([]byte, 1400)
	buf := make([]byte, 0, pkt.GTPUOverhead+len(inner))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = pkt.AppendGPDU(buf[:0], src, dst, 0xbeef, len(inner))
		buf = append(buf, inner...)
		teid, got, err := pkt.DecapsulateGPDU(buf)
		if err != nil {
			b.Fatal(err)
		}
		if teid != 0xbeef || len(got) != len(inner) {
			b.Fatalf("decap teid %#x len %d", teid, len(got))
		}
	}
}

// BenchmarkAllocTelemetryInc measures a counter increment on an
// already-registered metric — the per-event telemetry hot path.
func BenchmarkAllocTelemetryInc(b *testing.B) {
	reg := telemetry.New()
	c := reg.Scope("bench").Counter("inc")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkAllocTelemetryObserve measures a histogram observation, the
// per-sample latency-recording path.
func BenchmarkAllocTelemetryObserve(b *testing.B) {
	reg := telemetry.New()
	h := reg.Scope("bench").Histogram("observe")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

// BenchmarkAllocTelemetryScope measures re-deriving an interned scope —
// the path a handler takes when it scopes metrics per message rather than
// caching the Scope value.
func BenchmarkAllocTelemetryScope(b *testing.B) {
	reg := telemetry.New()
	reg.Scope("epc").Scope("s1ap") // warm the intern table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = reg.Scope("epc").Scope("s1ap")
	}
}

// BenchmarkAllocPacketPath measures the steady-state one-hop data path:
// pooled packet out of the network free-list, link transit, sink release.
func BenchmarkAllocPacketPath(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	na := nw.AddNode("a", pkt.AddrFrom(10, 0, 0, 1))
	nb := nw.AddNode("b", pkt.AddrFrom(10, 0, 0, 2))
	ha := netsim.NewHost(na)
	netsim.NewSink(netsim.NewHost(nb), 9000)
	nw.ConnectSymmetric(na, nb, netsim.LinkConfig{BitsPerSecond: 1e9, Propagation: time.Millisecond})
	// Warm the packet and event pools before measuring.
	ha.Send(pkt.AddrFrom(10, 0, 0, 2), 30000, 9000, pkt.ProtoUDP, 1200, nil)
	eng.Run()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ha.Send(pkt.AddrFrom(10, 0, 0, 2), 30000, 9000, pkt.ProtoUDP, 1200, nil)
		eng.Run()
	}
}

// BenchmarkAllocEngineAfter measures pooled event scheduling with a
// pre-bound callback, the engine's per-event hot path.
func BenchmarkAllocEngineAfter(b *testing.B) {
	eng := sim.NewEngine(1)
	nop := func() {}
	// Warm the event pool.
	eng.After(1, nop)
	eng.Run()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.After(1, nop)
		eng.Run()
	}
}

// BenchmarkAllocAttachCycle measures a full control-plane attach/detach
// cycle on a live testbed: NAS + S1AP + GTPv2 signaling, bearer setup and
// teardown, all encoding into core-owned scratch buffers.
func BenchmarkAllocAttachCycle(b *testing.B) {
	tb := NewTestbed(TestbedConfig{Seed: 1})
	ue := tb.UEs[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tb.Attach(ue); err != nil {
			b.Fatal(err)
		}
		done := false
		if err := ue.UE.Detach(func() { done = true }); err != nil {
			b.Fatal(err)
		}
		tb.Run(time.Second)
		if !done {
			b.Fatal("detach did not complete")
		}
	}
}

// BenchmarkAllocAttachBatch measures the batched control-plane path: one
// AttachBatch/DetachBatch cycle over an 8-UE cohort, which coalesces the
// per-UE GTPv2 exchanges into per-batch ones (6 messages per cohort instead
// of 6 per UE). Compare per-UE cost against BenchmarkAllocAttachCycle.
func BenchmarkAllocAttachBatch(b *testing.B) {
	const cohort = 8
	tb := NewTestbed(TestbedConfig{Seed: 1, NumUEs: cohort})
	ues := make([]*epc.UE, cohort)
	for i, bundle := range tb.UEs {
		ues[i] = bundle.UE
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		attached := 0
		tb.EPC.AttachBatch(ues, "core-sgw", "core-pgw", func(_ *epc.UE, err error) {
			if err != nil {
				b.Fatal(err)
			}
			attached++
		})
		tb.Run(2 * time.Second)
		if attached != cohort {
			b.Fatalf("attached %d of %d", attached, cohort)
		}
		detached := 0
		tb.EPC.DetachBatch(ues, func(_ *epc.UE, err error) {
			if err != nil {
				b.Fatal(err)
			}
			detached++
		})
		tb.Run(2 * time.Second)
		if detached != cohort {
			b.Fatalf("detached %d of %d", detached, cohort)
		}
	}
}

// BenchmarkAllocHandover measures the S1 handover control path on a live
// testbed: one iteration ping-pongs an attached session between two cells
// (two full handovers), covering the S1AP leg to both eNBs, the GTPv2
// bearer-modify exchange toward the gateways, and the path switch with its
// compensation bookkeeping. The UE runs no app, so this isolates the
// control plane from MRS relocation and state migration.
func BenchmarkAllocHandover(b *testing.B) {
	tb := NewTestbed(TestbedConfig{Seed: 1, IdleTimeout: time.Hour})
	east := tb.AddNeighborENB("enb-east")
	ue := tb.UEs[0]
	if err := tb.Attach(ue); err != nil {
		b.Fatal(err)
	}
	// Warm: one round trip so lazily-built state exists before measuring.
	if err := tb.Handover(ue, east); err != nil {
		b.Fatal(err)
	}
	if err := tb.Handover(ue, tb.ENB); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tb.Handover(ue, east); err != nil {
			b.Fatal(err)
		}
		if err := tb.Handover(ue, tb.ENB); err != nil {
			b.Fatal(err)
		}
	}
}

// TestZeroAllocGTPUEncap pins the strict contract from ISSUE acceptance:
// GTP-U encapsulation into a reused scratch buffer performs zero
// allocations per packet.
func TestZeroAllocGTPUEncap(t *testing.T) {
	src, dst := pkt.AddrFrom(10, 0, 0, 1), pkt.AddrFrom(10, 0, 0, 2)
	buf := make([]byte, 0, pkt.GTPUOverhead)
	n := testing.AllocsPerRun(1000, func() {
		buf = pkt.AppendGPDU(buf[:0], src, dst, 0xbeef, 1400)
	})
	if n != 0 {
		t.Fatalf("GTP-U encap allocates %.1f times per packet, want 0", n)
	}
}

// TestZeroAllocTelemetry pins zero allocations on counter increment,
// gauge set and histogram observe for registered metrics.
func TestZeroAllocTelemetry(t *testing.T) {
	reg := telemetry.New()
	s := reg.Scope("zero")
	c := s.Counter("c")
	g := s.Gauge("g")
	h := s.Histogram("h")
	x := 0.0
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(x)
		h.Observe(x)
		x++
	})
	if n != 0 {
		t.Fatalf("telemetry observe path allocates %.1f times per event, want 0", n)
	}
}

// TestZeroAllocInternedScope pins zero allocations when re-deriving a
// scope whose prefix is already interned in the registry.
func TestZeroAllocInternedScope(t *testing.T) {
	reg := telemetry.New()
	reg.Scope("epc").Scope("s1ap")
	n := testing.AllocsPerRun(1000, func() {
		_ = reg.Scope("epc").Scope("s1ap")
	})
	if n != 0 {
		t.Fatalf("interned scope lookup allocates %.1f times, want 0", n)
	}
}
