module acacia

go 1.22
